//! Cross-query cardinality feedback.
//!
//! The re-optimization driver observes true cardinalities while a query runs —
//! exhausted scans, completed breaker joins, progress lower bounds. Without feedback,
//! every observation dies with its query and the next run of the same template
//! rediscovers the same mis-estimates from scratch. The [`FeedbackCache`] is the
//! catalog-resident store that persists those observations across queries, keyed by a
//! normalized *(relation set, predicate signature)* so that any later query joining
//! the same tables under the same predicates can be seeded with the observed truth.
//!
//! The catalog sits below the planner in the crate graph, so keys are built from
//! primitive normalized strings the planner supplies (see `reopt-planner`'s
//! `feedback` module): per-relation fingerprints (table name plus alias-normalized
//! predicate SQL), join-edge strings with canonical relation ordinals, and complex
//! predicate strings. Key equality is structural; a near-miss in normalization only
//! loses a seeding opportunity, it can never corrupt results (injected cardinalities
//! steer the optimizer, not the executor).
//!
//! Entries carry the same exact-versus-lower-bound distinction as the planner's
//! override table: exact counts overwrite, bounds only ever grow and never demote an
//! exact count unless they exceed it (which proves the count stale). The store is
//! bounded; least-recently-used entries are evicted first.
//!
//! Once sessions multiplex over one database, the cache is **shared mutable state**:
//! the store lives behind an `Arc<Mutex<_>>`, every method takes `&self`, and a
//! [`FeedbackCache`] clone is a second handle onto the *same* store — concurrent
//! sessions recording and seeding simultaneously observe each other's entries. Each
//! operation takes the lock once (no await points, no callbacks under the lock), so
//! the critical sections are short and deadlock-free by construction.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// Default maximum number of cached feedback entries.
pub const DEFAULT_FEEDBACK_CAPACITY: usize = 1024;

/// The identity of one base relation inside a feedback key: the table it scans and
/// its filter predicates, rendered as alias-normalized SQL and sorted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationFingerprint {
    /// Lowercase table name.
    pub table: String,
    /// Normalized local-predicate SQL strings, sorted.
    pub predicates: Vec<String>,
}

impl RelationFingerprint {
    /// Build a fingerprint, normalizing case and predicate order.
    pub fn new(table: impl Into<String>, mut predicates: Vec<String>) -> Self {
        predicates.sort();
        Self {
            table: table.into().to_ascii_lowercase(),
            predicates,
        }
    }
}

/// A normalized key identifying a relation subset of some query: the multiset of
/// relation fingerprints, the join edges among them (with endpoints as canonical
/// ordinals), and the complex predicates applied within the subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeedbackKey {
    /// Relation fingerprints, sorted.
    pub relations: Vec<RelationFingerprint>,
    /// Canonicalized join-edge strings (`r0.col = r1.col`), sorted.
    pub edges: Vec<String>,
    /// Canonicalized complex-predicate strings, sorted.
    pub predicates: Vec<String>,
}

impl FeedbackKey {
    /// Build a key, sorting each component so equal signatures compare equal.
    pub fn new(
        mut relations: Vec<RelationFingerprint>,
        mut edges: Vec<String>,
        mut predicates: Vec<String>,
    ) -> Self {
        relations.sort();
        edges.sort();
        predicates.sort();
        Self {
            relations,
            edges,
            predicates,
        }
    }

    /// Whether any relation in the key scans `table`.
    pub fn references_table(&self, table: &str) -> bool {
        let table = table.to_ascii_lowercase();
        self.relations.iter().any(|r| r.table == table)
    }
}

/// One cached observation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackEntry {
    /// Observed cardinality.
    pub rows: f64,
    /// Whether `rows` is a true count (operator ran to completion) or only a lower
    /// bound (operator suspended mid-stream).
    pub exact: bool,
    /// LRU recency stamp (larger = used more recently).
    last_used: u64,
}

/// The mutable state behind the cache's shared handle.
#[derive(Debug)]
struct FeedbackInner {
    entries: HashMap<FeedbackKey, FeedbackEntry>,
    capacity: usize,
    clock: u64,
    recorded: u64,
    hits: u64,
}

impl FeedbackInner {
    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    fn evict_lru(&mut self) {
        if let Some(victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&victim);
        }
    }
}

/// The bounded cross-query feedback store. A clone is a second **handle to the same
/// store**, not a copy: every session connected to a database records into and seeds
/// from one shared cache.
#[derive(Debug, Clone)]
pub struct FeedbackCache {
    inner: Arc<Mutex<FeedbackInner>>,
}

impl Default for FeedbackCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FEEDBACK_CAPACITY)
    }
}

impl FeedbackCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to `capacity` entries (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            inner: Arc::new(Mutex::new(FeedbackInner {
                entries: HashMap::new(),
                capacity: capacity.max(1),
                clock: 0,
                recorded: 0,
                hits: 0,
            })),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FeedbackInner> {
        // A poisoned cache only means some session panicked mid-record; the store
        // itself is always structurally valid, so recover the guard.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record an observation. Exact counts overwrite whatever is stored; lower
    /// bounds never shrink an entry and never demote an exact count unless the bound
    /// exceeds it (the count must then be stale).
    pub fn record(&self, key: FeedbackKey, rows: f64, exact: bool) {
        let rows = rows.max(0.0);
        let mut inner = self.lock();
        let stamp = inner.tick();
        if let Some(existing) = inner.entries.get_mut(&key) {
            existing.last_used = stamp;
            if exact {
                existing.rows = rows;
                existing.exact = true;
            } else if rows > existing.rows {
                existing.rows = rows;
                existing.exact = false;
            }
            return;
        }
        inner.recorded += 1;
        inner.entries.insert(
            key,
            FeedbackEntry {
                rows,
                exact,
                last_used: stamp,
            },
        );
        if inner.entries.len() > inner.capacity {
            inner.evict_lru();
        }
    }

    /// Look up an observation, bumping its recency.
    pub fn lookup(&self, key: &FeedbackKey) -> Option<(f64, bool)> {
        let mut inner = self.lock();
        let stamp = inner.tick();
        let entry = inner.entries.get_mut(key)?;
        entry.last_used = stamp;
        let hit = (entry.rows, entry.exact);
        inner.hits += 1;
        Some(hit)
    }

    /// Snapshot all entries without touching recency (the planner's seeding pass
    /// scans the store to match entries against a new query). The snapshot is
    /// point-in-time: entries recorded by concurrent sessions after the call
    /// started may or may not appear.
    pub fn iter(&self) -> impl Iterator<Item = (FeedbackKey, f64, bool)> {
        let snapshot: Vec<(FeedbackKey, f64, bool)> = self
            .lock()
            .entries
            .iter()
            .map(|(k, e)| (k.clone(), e.rows, e.exact))
            .collect();
        snapshot.into_iter()
    }

    /// Drop every entry that references `table`. Called when the table's contents or
    /// statistics change (ingest, ANALYZE, drop): the cached counts no longer
    /// describe the data, so they are forgotten and re-learned on the next run.
    pub fn invalidate_table(&self, table: &str) {
        self.lock().entries.retain(|k, _| !k.references_table(table));
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.lock().entries.clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.lock().entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.lock().capacity
    }

    /// Total distinct entries ever recorded (monotone; survives eviction).
    pub fn total_recorded(&self) -> u64 {
        self.lock().recorded
    }

    /// Total successful lookups.
    pub fn total_hits(&self) -> u64 {
        self.lock().hits
    }

    /// Whether another handle shares this cache's store (used by tests asserting
    /// that sessions share feedback).
    pub fn shares_store_with(&self, other: &FeedbackCache) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tables: &[&str], edges: &[&str]) -> FeedbackKey {
        FeedbackKey::new(
            tables
                .iter()
                .map(|t| RelationFingerprint::new(*t, vec![]))
                .collect(),
            edges.iter().map(|e| e.to_string()).collect(),
            vec![],
        )
    }

    #[test]
    fn key_normalization_is_order_insensitive() {
        let a = FeedbackKey::new(
            vec![
                RelationFingerprint::new("Title", vec!["@.x = 1".into(), "@.y = 2".into()]),
                RelationFingerprint::new("keyword", vec![]),
            ],
            vec!["r0.id = r1.movie_id".into()],
            vec![],
        );
        let b = FeedbackKey::new(
            vec![
                RelationFingerprint::new("keyword", vec![]),
                RelationFingerprint::new("title", vec!["@.y = 2".into(), "@.x = 1".into()]),
            ],
            vec!["r0.id = r1.movie_id".into()],
            vec![],
        );
        assert_eq!(a, b);
        assert!(a.references_table("TITLE"));
        assert!(!a.references_table("trades"));
    }

    #[test]
    fn record_and_lookup_with_exactness_merge() {
        let cache = FeedbackCache::new();
        let k = key(&["title", "movie_keyword"], &["r0.id = r1.movie_id"]);
        // A bound lands as a bound and only grows.
        cache.record(k.clone(), 100.0, false);
        cache.record(k.clone(), 50.0, false);
        assert_eq!(cache.lookup(&k), Some((100.0, false)));
        cache.record(k.clone(), 150.0, false);
        assert_eq!(cache.lookup(&k), Some((150.0, false)));
        // An exact count overwrites even downward.
        cache.record(k.clone(), 120.0, true);
        assert_eq!(cache.lookup(&k), Some((120.0, true)));
        // A bound below the exact count is ignored; above it, the count is stale.
        cache.record(k.clone(), 110.0, false);
        assert_eq!(cache.lookup(&k), Some((120.0, true)));
        cache.record(k.clone(), 300.0, false);
        assert_eq!(cache.lookup(&k), Some((300.0, false)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.total_recorded(), 1);
        assert!(cache.total_hits() >= 5);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let cache = FeedbackCache::with_capacity(2);
        let a = key(&["a"], &[]);
        let b = key(&["b"], &[]);
        let c = key(&["c"], &[]);
        cache.record(a.clone(), 1.0, true);
        cache.record(b.clone(), 2.0, true);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        assert!(cache.lookup(&a).is_some());
        cache.record(c.clone(), 3.0, true);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a).is_some());
        assert!(cache.lookup(&b).is_none());
        assert!(cache.lookup(&c).is_some());
    }

    #[test]
    fn invalidation_drops_only_entries_referencing_the_table() {
        let cache = FeedbackCache::new();
        let tk = key(&["title", "keyword"], &["r0.id = r1.movie_id"]);
        let other = key(&["company"], &[]);
        cache.record(tk.clone(), 10.0, true);
        cache.record(other.clone(), 20.0, true);
        cache.invalidate_table("keyword");
        assert!(cache.lookup(&tk).is_none());
        assert!(cache.lookup(&other).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), DEFAULT_FEEDBACK_CAPACITY);
    }

    #[test]
    fn concurrent_recording_from_many_threads_loses_nothing() {
        // Every thread records its own disjoint key set; after the join, every
        // key must be present with the value its thread wrote. Concurrent
        // sessions recording observed cardinalities is exactly this shape.
        const THREADS: usize = 8;
        const KEYS_PER_THREAD: usize = 32;
        let cache = FeedbackCache::with_capacity(THREADS * KEYS_PER_THREAD);
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let cache = cache.clone();
                std::thread::spawn(move || {
                    for i in 0..KEYS_PER_THREAD {
                        let k = key(&[&format!("t{t}_rel{i}")], &[]);
                        cache.record(k, (t * KEYS_PER_THREAD + i) as f64, t % 2 == 0);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().expect("recorder thread panicked");
        }
        assert_eq!(cache.len(), THREADS * KEYS_PER_THREAD);
        assert_eq!(cache.total_recorded() as usize, THREADS * KEYS_PER_THREAD);
        for t in 0..THREADS {
            for i in 0..KEYS_PER_THREAD {
                let k = key(&[&format!("t{t}_rel{i}")], &[]);
                assert_eq!(
                    cache.lookup(&k),
                    Some(((t * KEYS_PER_THREAD + i) as f64, t % 2 == 0)),
                    "thread {t} key {i} lost or corrupted under concurrent recording"
                );
            }
        }
    }

    #[test]
    fn concurrent_record_seed_and_invalidate_keep_the_cache_coherent() {
        // Writers hammer a shared key set (bounds only grow; exact overwrites),
        // readers snapshot-iterate mid-write, and an invalidator drops one
        // table's keys — the mix the shared server produces when sessions
        // record feedback while others seed overrides and DDL invalidates.
        const WRITERS: usize = 4;
        const ROUNDS: usize = 64;
        let cache = FeedbackCache::new();
        let mut handles = Vec::new();
        for w in 0..WRITERS {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..ROUNDS {
                    let k = key(&["shared", &format!("rel{}", round % 4)], &[]);
                    cache.record(k, (w * ROUNDS + round) as f64, false);
                }
            }));
        }
        for _ in 0..2 {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    // Seeding = lookup + snapshot iteration; both must never
                    // observe a torn entry (a bound must be a value some writer
                    // actually recorded or larger — bounds only grow).
                    for (_key, rows, _exact) in cache.iter() {
                        assert!(rows.is_finite() && rows >= 0.0);
                    }
                    let k = key(&["shared", "rel0"], &[]);
                    if let Some((rows, _)) = cache.lookup(&k) {
                        assert!(rows.is_finite() && rows >= 0.0);
                    }
                }
            }));
        }
        {
            let cache = cache.clone();
            handles.push(std::thread::spawn(move || {
                for _ in 0..ROUNDS / 4 {
                    cache.invalidate_table("doomed");
                    cache.record(key(&["doomed"], &[]), 1.0, true);
                }
            }));
        }
        for handle in handles {
            handle.join().expect("cache thread panicked");
        }
        // Bounds only grow: the surviving value for each shared key is the max
        // any writer recorded for it.
        for round in 0..4 {
            let k = key(&["shared", &format!("rel{round}")], &[]);
            let (rows, exact) = cache.lookup(&k).expect("shared key survived");
            let max_written = ((WRITERS - 1) * ROUNDS + (ROUNDS - 4 + round)) as f64;
            assert_eq!(rows, max_written, "bound must converge to the max recorded");
            assert!(!exact);
        }
    }

    #[test]
    fn clones_share_one_store_across_threads() {
        let cache = FeedbackCache::new();
        let clone = cache.clone();
        assert!(cache.shares_store_with(&clone));
        let writer = std::thread::spawn(move || {
            clone.record(key(&["seen_from_clone"], &[]), 7.0, true);
        });
        writer.join().expect("writer thread panicked");
        assert_eq!(cache.lookup(&key(&["seen_from_clone"], &[])), Some((7.0, true)));
    }
}
