//! Cross-query cardinality feedback.
//!
//! The re-optimization driver observes true cardinalities while a query runs —
//! exhausted scans, completed breaker joins, progress lower bounds. Without feedback,
//! every observation dies with its query and the next run of the same template
//! rediscovers the same mis-estimates from scratch. The [`FeedbackCache`] is the
//! catalog-resident store that persists those observations across queries, keyed by a
//! normalized *(relation set, predicate signature)* so that any later query joining
//! the same tables under the same predicates can be seeded with the observed truth.
//!
//! The catalog sits below the planner in the crate graph, so keys are built from
//! primitive normalized strings the planner supplies (see `reopt-planner`'s
//! `feedback` module): per-relation fingerprints (table name plus alias-normalized
//! predicate SQL), join-edge strings with canonical relation ordinals, and complex
//! predicate strings. Key equality is structural; a near-miss in normalization only
//! loses a seeding opportunity, it can never corrupt results (injected cardinalities
//! steer the optimizer, not the executor).
//!
//! Entries carry the same exact-versus-lower-bound distinction as the planner's
//! override table: exact counts overwrite, bounds only ever grow and never demote an
//! exact count unless they exceed it (which proves the count stale). The store is
//! bounded; least-recently-used entries are evicted first.

use std::collections::HashMap;

/// Default maximum number of cached feedback entries.
pub const DEFAULT_FEEDBACK_CAPACITY: usize = 1024;

/// The identity of one base relation inside a feedback key: the table it scans and
/// its filter predicates, rendered as alias-normalized SQL and sorted.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelationFingerprint {
    /// Lowercase table name.
    pub table: String,
    /// Normalized local-predicate SQL strings, sorted.
    pub predicates: Vec<String>,
}

impl RelationFingerprint {
    /// Build a fingerprint, normalizing case and predicate order.
    pub fn new(table: impl Into<String>, mut predicates: Vec<String>) -> Self {
        predicates.sort();
        Self {
            table: table.into().to_ascii_lowercase(),
            predicates,
        }
    }
}

/// A normalized key identifying a relation subset of some query: the multiset of
/// relation fingerprints, the join edges among them (with endpoints as canonical
/// ordinals), and the complex predicates applied within the subset.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FeedbackKey {
    /// Relation fingerprints, sorted.
    pub relations: Vec<RelationFingerprint>,
    /// Canonicalized join-edge strings (`r0.col = r1.col`), sorted.
    pub edges: Vec<String>,
    /// Canonicalized complex-predicate strings, sorted.
    pub predicates: Vec<String>,
}

impl FeedbackKey {
    /// Build a key, sorting each component so equal signatures compare equal.
    pub fn new(
        mut relations: Vec<RelationFingerprint>,
        mut edges: Vec<String>,
        mut predicates: Vec<String>,
    ) -> Self {
        relations.sort();
        edges.sort();
        predicates.sort();
        Self {
            relations,
            edges,
            predicates,
        }
    }

    /// Whether any relation in the key scans `table`.
    pub fn references_table(&self, table: &str) -> bool {
        let table = table.to_ascii_lowercase();
        self.relations.iter().any(|r| r.table == table)
    }
}

/// One cached observation.
#[derive(Debug, Clone, PartialEq)]
pub struct FeedbackEntry {
    /// Observed cardinality.
    pub rows: f64,
    /// Whether `rows` is a true count (operator ran to completion) or only a lower
    /// bound (operator suspended mid-stream).
    pub exact: bool,
    /// LRU recency stamp (larger = used more recently).
    last_used: u64,
}

/// The bounded cross-query feedback store.
#[derive(Debug, Clone)]
pub struct FeedbackCache {
    entries: HashMap<FeedbackKey, FeedbackEntry>,
    capacity: usize,
    clock: u64,
    recorded: u64,
    hits: u64,
}

impl Default for FeedbackCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_FEEDBACK_CAPACITY)
    }
}

impl FeedbackCache {
    /// An empty cache with the default capacity.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty cache bounded to `capacity` entries (at least one).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            entries: HashMap::new(),
            capacity: capacity.max(1),
            clock: 0,
            recorded: 0,
            hits: 0,
        }
    }

    fn tick(&mut self) -> u64 {
        self.clock += 1;
        self.clock
    }

    /// Record an observation. Exact counts overwrite whatever is stored; lower
    /// bounds never shrink an entry and never demote an exact count unless the bound
    /// exceeds it (the count must then be stale).
    pub fn record(&mut self, key: FeedbackKey, rows: f64, exact: bool) {
        let rows = rows.max(0.0);
        let stamp = self.tick();
        if let Some(existing) = self.entries.get_mut(&key) {
            existing.last_used = stamp;
            if exact {
                existing.rows = rows;
                existing.exact = true;
            } else if rows > existing.rows {
                existing.rows = rows;
                existing.exact = false;
            }
            return;
        }
        self.recorded += 1;
        self.entries.insert(
            key,
            FeedbackEntry {
                rows,
                exact,
                last_used: stamp,
            },
        );
        if self.entries.len() > self.capacity {
            self.evict_lru();
        }
    }

    fn evict_lru(&mut self) {
        if let Some(victim) = self
            .entries
            .iter()
            .min_by_key(|(_, e)| e.last_used)
            .map(|(k, _)| k.clone())
        {
            self.entries.remove(&victim);
        }
    }

    /// Look up an observation, bumping its recency.
    pub fn lookup(&mut self, key: &FeedbackKey) -> Option<(f64, bool)> {
        let stamp = self.tick();
        let entry = self.entries.get_mut(key)?;
        entry.last_used = stamp;
        self.hits += 1;
        Some((entry.rows, entry.exact))
    }

    /// Iterate over all entries without touching recency (the planner's seeding pass
    /// scans the store to match entries against a new query).
    pub fn iter(&self) -> impl Iterator<Item = (&FeedbackKey, f64, bool)> + '_ {
        self.entries.iter().map(|(k, e)| (k, e.rows, e.exact))
    }

    /// Drop every entry that references `table`. Called when the table's contents or
    /// statistics change (ingest, ANALYZE, drop): the cached counts no longer
    /// describe the data, so they are forgotten and re-learned on the next run.
    pub fn invalidate_table(&mut self, table: &str) {
        self.entries.retain(|k, _| !k.references_table(table));
    }

    /// Drop everything.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Total distinct entries ever recorded (monotone; survives eviction).
    pub fn total_recorded(&self) -> u64 {
        self.recorded
    }

    /// Total successful lookups.
    pub fn total_hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(tables: &[&str], edges: &[&str]) -> FeedbackKey {
        FeedbackKey::new(
            tables
                .iter()
                .map(|t| RelationFingerprint::new(*t, vec![]))
                .collect(),
            edges.iter().map(|e| e.to_string()).collect(),
            vec![],
        )
    }

    #[test]
    fn key_normalization_is_order_insensitive() {
        let a = FeedbackKey::new(
            vec![
                RelationFingerprint::new("Title", vec!["@.x = 1".into(), "@.y = 2".into()]),
                RelationFingerprint::new("keyword", vec![]),
            ],
            vec!["r0.id = r1.movie_id".into()],
            vec![],
        );
        let b = FeedbackKey::new(
            vec![
                RelationFingerprint::new("keyword", vec![]),
                RelationFingerprint::new("title", vec!["@.y = 2".into(), "@.x = 1".into()]),
            ],
            vec!["r0.id = r1.movie_id".into()],
            vec![],
        );
        assert_eq!(a, b);
        assert!(a.references_table("TITLE"));
        assert!(!a.references_table("trades"));
    }

    #[test]
    fn record_and_lookup_with_exactness_merge() {
        let mut cache = FeedbackCache::new();
        let k = key(&["title", "movie_keyword"], &["r0.id = r1.movie_id"]);
        // A bound lands as a bound and only grows.
        cache.record(k.clone(), 100.0, false);
        cache.record(k.clone(), 50.0, false);
        assert_eq!(cache.lookup(&k), Some((100.0, false)));
        cache.record(k.clone(), 150.0, false);
        assert_eq!(cache.lookup(&k), Some((150.0, false)));
        // An exact count overwrites even downward.
        cache.record(k.clone(), 120.0, true);
        assert_eq!(cache.lookup(&k), Some((120.0, true)));
        // A bound below the exact count is ignored; above it, the count is stale.
        cache.record(k.clone(), 110.0, false);
        assert_eq!(cache.lookup(&k), Some((120.0, true)));
        cache.record(k.clone(), 300.0, false);
        assert_eq!(cache.lookup(&k), Some((300.0, false)));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.total_recorded(), 1);
        assert!(cache.total_hits() >= 5);
    }

    #[test]
    fn lru_eviction_keeps_recently_used_entries() {
        let mut cache = FeedbackCache::with_capacity(2);
        let a = key(&["a"], &[]);
        let b = key(&["b"], &[]);
        let c = key(&["c"], &[]);
        cache.record(a.clone(), 1.0, true);
        cache.record(b.clone(), 2.0, true);
        // Touch `a` so `b` is the LRU victim when `c` arrives.
        assert!(cache.lookup(&a).is_some());
        cache.record(c.clone(), 3.0, true);
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup(&a).is_some());
        assert!(cache.lookup(&b).is_none());
        assert!(cache.lookup(&c).is_some());
    }

    #[test]
    fn invalidation_drops_only_entries_referencing_the_table() {
        let mut cache = FeedbackCache::new();
        let tk = key(&["title", "keyword"], &["r0.id = r1.movie_id"]);
        let other = key(&["company"], &[]);
        cache.record(tk.clone(), 10.0, true);
        cache.record(other.clone(), 20.0, true);
        cache.invalidate_table("keyword");
        assert!(cache.lookup(&tk).is_none());
        assert!(cache.lookup(&other).is_some());
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), DEFAULT_FEEDBACK_CAPACITY);
    }
}
