//! ANALYZE: build statistics from a table, optionally from a random sample.
//!
//! This mirrors PostgreSQL's `ANALYZE`: take a row sample of `300 × statistics_target`
//! rows, compute the null fraction, an MCV list, an equi-depth histogram over the
//! remaining values, and estimate the number of distinct values with the Duj1 estimator
//! (Haas & Stokes) when sampling, or exactly when the whole table was scanned.
//!
//! The storage layer is columnar, so ANALYZE works column-at-a-time. When the whole
//! table is scanned, per-column aggregates come straight from storage metadata instead
//! of a value-by-value pass: NULL count, min/max and byte widths are read from
//! [`reopt_storage::ColumnMeta`], and for dictionary-encoded text columns the exact
//! value distribution (distinct strings and their occurrence counts) is read from the
//! column's [`reopt_storage::StringDict`]. The numbers are identical to a row scan —
//! the dictionary tracks exact occurrence counts and the metadata folds every appended
//! value — it just skips re-hashing every row.

use crate::stats::{ColumnStatistics, Histogram, MostCommonValues, TableStatistics};
use rand::rngs::StdRng;
use rand::seq::index::sample;
use rand::SeedableRng;
use reopt_storage::{ColumnData, Table, Value};
use std::collections::HashMap;

/// Options controlling ANALYZE.
#[derive(Debug, Clone)]
pub struct AnalyzeOptions {
    /// MCV list size and histogram bucket count.
    pub statistics_target: usize,
    /// Sample size multiplier: sample `multiplier × statistics_target` rows.
    /// PostgreSQL uses 300.
    pub sample_rows_per_target: usize,
    /// Seed for the sampling RNG, so ANALYZE is deterministic in tests and benchmarks.
    pub seed: u64,
}

impl Default for AnalyzeOptions {
    fn default() -> Self {
        Self {
            statistics_target: crate::DEFAULT_STATISTICS_TARGET,
            sample_rows_per_target: 300,
            seed: 0x5eed_beef,
        }
    }
}

/// Per-column aggregates over the analyzed rows (the whole table or a sample).
struct ColumnSummary {
    sample_size: usize,
    nulls: usize,
    width_sum: u64,
    /// Occurrence count per distinct non-NULL value.
    counts: HashMap<Value, usize>,
    min: Option<Value>,
    max: Option<Value>,
}

/// Run ANALYZE over a table.
pub fn analyze_table(table: &Table, options: &AnalyzeOptions) -> TableStatistics {
    let row_count = table.row_count();
    let target_sample = options
        .statistics_target
        .saturating_mul(options.sample_rows_per_target)
        .max(1);

    // Either scan everything or take a uniform random sample of row ids.
    let sampled_ids: Option<Vec<usize>> = if row_count <= target_sample {
        None
    } else {
        let mut rng = StdRng::seed_from_u64(options.seed);
        let mut ids: Vec<usize> = sample(&mut rng, row_count, target_sample).into_vec();
        ids.sort_unstable();
        Some(ids)
    };
    let sampled_all = sampled_ids.is_none();

    let mut columns = Vec::with_capacity(table.schema().len());
    for (idx, column) in table.schema().columns().iter().enumerate() {
        let summary = match &sampled_ids {
            None => summarize_full_column(table, idx, row_count),
            Some(ids) => summarize_sampled_column(table.column(idx), ids),
        };
        columns.push(finish_column(
            column.name(),
            summary,
            row_count,
            sampled_all,
            options.statistics_target,
        ));
    }

    TableStatistics {
        row_count: row_count as u64,
        avg_row_width: table.average_row_width() as f64,
        columns,
    }
}

/// Aggregate a whole column from storage metadata plus (at most) one typed pass.
///
/// NULL count, min/max and the byte-width sum always come from [`ColumnMeta`]
/// maintained on append — no scan needed. The value distribution comes from the
/// string dictionary when the column is dictionary-encoded; otherwise one pass over
/// the decoded non-NULL values builds it.
///
/// [`ColumnMeta`]: reopt_storage::ColumnMeta
fn summarize_full_column(table: &Table, idx: usize, row_count: usize) -> ColumnSummary {
    let meta = table.column_meta(idx);
    let column = table.column(idx);
    let counts: HashMap<Value, usize> = match column {
        ColumnData::Dict { dict, .. } => dict
            .values()
            .iter()
            .zip(dict.counts())
            .map(|(s, &c)| (Value::from(s.as_str()), c as usize))
            .collect(),
        _ => {
            let mut counts = HashMap::new();
            for id in 0..row_count {
                let v = column.value_at(id);
                if v.is_null() {
                    continue;
                }
                *counts.entry(v).or_insert(0) += 1;
            }
            counts
        }
    };
    ColumnSummary {
        sample_size: row_count,
        nulls: meta.null_count as usize,
        width_sum: meta.byte_sum,
        counts,
        min: meta.min.clone(),
        max: meta.max.clone(),
    }
}

/// Aggregate a column over a sorted sample of row ids with one decoded pass.
fn summarize_sampled_column(column: &ColumnData, ids: &[usize]) -> ColumnSummary {
    let mut summary = ColumnSummary {
        sample_size: ids.len(),
        nulls: 0,
        width_sum: 0,
        counts: HashMap::new(),
        min: None,
        max: None,
    };
    for &id in ids {
        let v = column.value_at(id);
        summary.width_sum += v.width() as u64;
        if v.is_null() {
            summary.nulls += 1;
            continue;
        }
        if summary.min.as_ref().map(|m| v < *m).unwrap_or(true) {
            summary.min = Some(v.clone());
        }
        if summary.max.as_ref().map(|m| v > *m).unwrap_or(true) {
            summary.max = Some(v.clone());
        }
        *summary.counts.entry(v).or_insert(0) += 1;
    }
    summary
}

/// Turn per-column aggregates into [`ColumnStatistics`]: Duj1 / exact distincts, the
/// MCV list and the equi-depth histogram over the rest.
fn finish_column(
    name: &str,
    summary: ColumnSummary,
    table_rows: usize,
    sampled_all: bool,
    statistics_target: usize,
) -> ColumnStatistics {
    let sample_size = summary.sample_size;
    if sample_size == 0 {
        return ColumnStatistics {
            name: name.to_string(),
            n_distinct: 1.0,
            ..Default::default()
        };
    }

    let counts = &summary.counts;
    let non_null = sample_size - summary.nulls;
    let null_fraction = summary.nulls as f64 / sample_size as f64;
    let distinct_in_sample = counts.len();

    // Number of distinct values: exact when we scanned everything, otherwise the Duj1
    // estimator d = n*d / (n - f1 + f1*n/N) where f1 is the number of values seen once.
    let n_distinct = if sampled_all || non_null == 0 {
        distinct_in_sample as f64
    } else {
        let f1 = counts.values().filter(|&&c| c == 1).count() as f64;
        let n = non_null as f64;
        let d = distinct_in_sample as f64;
        let total_non_null = table_rows as f64 * (1.0 - null_fraction);
        let denominator = n - f1 + f1 * n / total_non_null.max(1.0);
        if denominator <= 0.0 {
            d
        } else {
            (n * d / denominator).clamp(d, total_non_null.max(d))
        }
    };

    // MCV list: values that occur more than once in the sample and are among the
    // `statistics_target` most frequent. Frequencies are relative to the full sample
    // (matching PostgreSQL, which stores fractions of all rows including NULLs).
    let mut by_freq: Vec<(&Value, usize)> = counts.iter().map(|(v, c)| (v, *c)).collect();
    by_freq.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let mcv_entries: Vec<(Value, f64)> = by_freq
        .iter()
        .take(statistics_target)
        .filter(|(_, c)| *c > 1 || distinct_in_sample <= statistics_target)
        .map(|(v, c)| ((*v).clone(), *c as f64 / sample_size as f64))
        .collect();
    let mcv_values: std::collections::HashSet<&Value> =
        mcv_entries.iter().map(|(v, _)| v).collect();

    // Histogram over values not in the MCV list.
    let mut rest: Vec<&Value> = Vec::new();
    for (value, count) in counts {
        if !mcv_values.contains(value) {
            for _ in 0..*count {
                rest.push(value);
            }
        }
    }
    rest.sort();
    let histogram = build_equi_depth_histogram(&rest, statistics_target);

    ColumnStatistics {
        name: name.to_string(),
        null_fraction,
        n_distinct: n_distinct.max(1.0),
        min: summary.min,
        max: summary.max,
        avg_width: summary.width_sum as f64 / sample_size as f64,
        mcv: MostCommonValues::new(mcv_entries),
        histogram,
    }
}

/// Build an equi-depth histogram over the (sorted, duplicated) non-MCV values.
fn build_equi_depth_histogram(sorted_values: &[&Value], buckets: usize) -> Histogram {
    if sorted_values.len() < 2 || buckets == 0 {
        return Histogram::default();
    }
    let buckets = buckets.min(sorted_values.len() - 1).max(1);
    let mut bounds = Vec::with_capacity(buckets + 1);
    for i in 0..=buckets {
        let pos = (i * (sorted_values.len() - 1)) / buckets;
        bounds.push(sorted_values[pos].clone());
    }
    bounds.dedup();
    if bounds.len() < 2 {
        return Histogram::default();
    }
    Histogram::new(bounds)
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_storage::{Column, DataType, Row, Schema};

    fn table_with_values(values: Vec<Value>) -> Table {
        let schema = Schema::new(vec![Column::new("v", DataType::Int)]);
        let mut table = Table::new("t", schema);
        for v in values {
            table.push_row(Row::from_values(vec![v])).unwrap();
        }
        table
    }

    fn skewed_table(rows: usize) -> Table {
        // Value 1 accounts for half the rows; the rest are unique.
        let mut values = Vec::new();
        for i in 0..rows {
            if i % 2 == 0 {
                values.push(Value::Int(1));
            } else {
                values.push(Value::Int(i as i64 + 10));
            }
        }
        table_with_values(values)
    }

    #[test]
    fn full_scan_statistics_are_exact() {
        let table = skewed_table(1000);
        let stats = analyze_table(&table, &AnalyzeOptions::default());
        assert_eq!(stats.row_count, 1000);
        let col = stats.column("v").unwrap();
        // 1 distinct value for the heavy hitter + 500 unique values.
        assert!((col.n_distinct - 501.0).abs() < 1e-9);
        assert_eq!(col.null_fraction, 0.0);
        assert_eq!(col.mcv.frequency_of(&Value::Int(1)), Some(0.5));
        assert_eq!(col.min, Some(Value::Int(1)));
        assert!(col.max.as_ref().unwrap().as_int().unwrap() > 1000);
    }

    #[test]
    fn full_scan_reads_text_statistics_from_the_dictionary() {
        // Dictionary-encoded text columns produce their distribution from the
        // dictionary's occurrence counts — verify the numbers match the known data.
        let schema = Schema::new(vec![Column::new("genre", DataType::Text)]);
        let mut table = Table::new("t", schema);
        for i in 0..400 {
            let v = match i % 4 {
                0 | 1 => Value::from("drama"),
                2 => Value::from("comedy"),
                _ => Value::Null,
            };
            table.push_row(Row::from_values(vec![v])).unwrap();
        }
        let stats = analyze_table(&table, &AnalyzeOptions::default());
        let col = stats.column("genre").unwrap();
        assert!((col.n_distinct - 2.0).abs() < 1e-9);
        assert!((col.null_fraction - 0.25).abs() < 1e-9);
        assert_eq!(col.mcv.frequency_of(&Value::from("drama")), Some(0.5));
        assert_eq!(col.mcv.frequency_of(&Value::from("comedy")), Some(0.25));
        assert_eq!(col.min, Some(Value::from("comedy")));
        assert_eq!(col.max, Some(Value::from("drama")));
        // Text width is len().max(1); NULL width is 1.
        let expected_width = (200.0 * 5.0 + 100.0 * 6.0 + 100.0 * 1.0) / 400.0;
        assert!((col.avg_width - expected_width).abs() < 1e-9);
    }

    #[test]
    fn sampled_statistics_estimate_distincts() {
        let table = skewed_table(100_000);
        let options = AnalyzeOptions {
            statistics_target: 10,
            sample_rows_per_target: 100,
            seed: 7,
        };
        let stats = analyze_table(&table, &options);
        let col = stats.column("v").unwrap();
        // True distinct count is 50 001; the Duj1 estimate from a 1 000-row sample is
        // noisy but must be in a sane range and the heavy hitter must be in the MCVs.
        assert!(col.n_distinct > 400.0, "n_distinct = {}", col.n_distinct);
        assert!(col.n_distinct <= 100_000.0);
        let f = col.mcv.frequency_of(&Value::Int(1)).unwrap();
        assert!((f - 0.5).abs() < 0.1, "MCV frequency {f}");
    }

    #[test]
    fn null_fraction_reported() {
        let mut values = vec![Value::Null; 250];
        values.extend((0..750).map(Value::Int));
        let table = table_with_values(values);
        let stats = analyze_table(&table, &AnalyzeOptions::default());
        let col = stats.column("v").unwrap();
        assert!((col.null_fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    fn histogram_covers_non_mcv_values() {
        let table = table_with_values((0..1000).map(Value::Int).collect());
        let options = AnalyzeOptions {
            statistics_target: 10,
            ..Default::default()
        };
        let stats = analyze_table(&table, &options);
        let col = stats.column("v").unwrap();
        assert!(!col.histogram.is_empty());
        let below_half = col.histogram.fraction_below(&Value::Int(500));
        assert!((below_half - 0.5).abs() < 0.05, "fraction {below_half}");
    }

    #[test]
    fn empty_table_statistics() {
        let table = table_with_values(vec![]);
        let stats = analyze_table(&table, &AnalyzeOptions::default());
        assert_eq!(stats.row_count, 0);
        let col = stats.column("v").unwrap();
        assert_eq!(col.n_distinct, 1.0);
        assert!(col.mcv.is_empty());
    }

    #[test]
    fn uniform_unique_column_has_no_mcv_when_wide() {
        // A unique column wider than the statistics target should not produce an MCV
        // list of singletons.
        let table = table_with_values((0..5000).map(Value::Int).collect());
        let options = AnalyzeOptions {
            statistics_target: 100,
            sample_rows_per_target: 10,
            ..Default::default()
        };
        let stats = analyze_table(&table, &options);
        let col = stats.column("v").unwrap();
        assert!(col.mcv.is_empty());
        assert!(col.n_distinct > 1000.0);
    }

    #[test]
    fn analyze_is_deterministic_for_fixed_seed() {
        let table = skewed_table(50_000);
        let options = AnalyzeOptions {
            statistics_target: 20,
            sample_rows_per_target: 50,
            seed: 42,
        };
        let a = analyze_table(&table, &options);
        let b = analyze_table(&table, &options);
        assert_eq!(a, b);
    }
}
