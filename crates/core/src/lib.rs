//! # reopt-core
//!
//! The paper's contribution: mid-query re-optimization on top of a Selinger-style
//! optimizer, plus the instrumentation the paper uses to study it.
//!
//! * [`Database`] — the engine façade: storage + catalog + optimizer + executor, with
//!   SQL entry points (`execute`, `explain`, `explain_analyze`) and per-statement
//!   planning/execution timings, the two quantities every figure in the paper reports.
//! * [`q_error`] — the error metric (Moerkotte et al.) used as the re-optimization
//!   trigger: re-optimize when `max(est/actual, actual/est)` exceeds a threshold
//!   (Section V-A; the paper settles on a threshold of 32).
//! * [`oracle`] — the **perfect-(n)** cardinality oracle: true cardinalities for every
//!   connected relation subset of at most `n` relations, injected into the estimator
//!   (Sections III-B and V-B, Figures 1, 2 and 8).
//! * [`policy`] — the pluggable re-optimization control plane: the [`ReoptPolicy`]
//!   trait (observe executor events and completed runs, decide
//!   `Continue | Restart | ReplanMidQuery`) and the built-in policies the paper's
//!   schemes are expressed as.
//! * [`reopt`] — the unified driver ([`execute_with_policy`]) behind every scheme:
//!   temp-table materialization and query rewriting (Section V, Figure 6),
//!   cardinality injection, and mid-flight suspension with breaker-state reuse.
//!   [`ReoptMode`] survives as a thin constructor over the built-in policies.
//! * [`selective`] — the LEO-style *selective improvement* simulation of Section IV-E
//!   (Figure 5): iteratively correct the lowest mis-estimated operator's cardinality and
//!   re-plan, without materialization — now a built-in policy on the same driver.
//! * [`report`] — per-query and per-workload run records shared by the experiment
//!   harnesses in `reopt-bench`.
//! * [`session`] — the multi-query server front-end: [`Database::connect`] hands out
//!   [`Session`]s (copy-on-write snapshots sharing one feedback cache and admission
//!   semaphore) whose queries multiplex over the process-wide worker pool.

pub mod database;
pub mod error;
pub mod oracle;
pub mod policy;
pub mod qerror;
pub mod reopt;
pub mod report;
pub mod selective;
pub mod session;

pub use database::{Database, QueryOutput};
pub use error::DbError;
pub use oracle::{connected_subsets_up_to, PerfectOracle};
pub use policy::{
    Correction, MidQueryPolicy, PolicyContext, PolicyDecision, ReoptPolicy, ReoptTrigger,
    RestartPolicy, SelectivePolicy, Violation,
};
pub use qerror::{q_error, DEFAULT_REOPT_THRESHOLD};
pub use reopt::{
    execute_with_policy, execute_with_policy_feedback, execute_with_reoptimization,
    feedback_enabled_by_default, ReoptConfig, ReoptMode, ReoptReport, ReoptRound, ReoptRoundKind,
};
pub use report::{relative_runtime_buckets, QueryRun, RuntimeBucket, WorkloadRun};
pub use selective::{selective_improvement, SelectiveConfig, SelectiveIteration};
pub use session::{ServerState, Session, DEFAULT_MAX_INFLIGHT};
