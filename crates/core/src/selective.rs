//! Selective improvement of cardinality estimates (Section IV-E, Figure 5).
//!
//! LEO-style systems observe estimation errors during execution and correct the
//! estimates for *future* executions of similar queries. The paper simulates the best
//! case of that strategy: repeatedly execute the same query, find the lowest operator in
//! the plan whose estimate is off by more than a threshold, fix that operator's estimate
//! (and every estimate below it) to the true value, and re-plan. Figure 5 plots the
//! per-iteration execution time and shows that (a) dozens of corrections can be needed
//! before a good plan appears and (b) correcting only a subset of estimates can
//! transiently make the plan *worse* than the original.

use crate::database::Database;
use crate::error::DbError;
use crate::qerror::DEFAULT_REOPT_THRESHOLD;
use reopt_executor::MetricsNode;
use reopt_planner::{CardinalityOverrides, RelSet};
use reopt_sql::parse_sql;
use std::time::Duration;

/// Configuration for the selective-improvement simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveConfig {
    /// Q-error threshold above which an operator's estimate is considered wrong
    /// (the paper uses 32).
    pub threshold: f64,
    /// Upper bound on the number of iterations.
    pub max_iterations: usize,
}

impl Default for SelectiveConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_REOPT_THRESHOLD,
            max_iterations: 64,
        }
    }
}

/// One iteration of the simulation.
#[derive(Debug, Clone)]
pub struct SelectiveIteration {
    /// Iteration number (0 = the original plan).
    pub iteration: usize,
    /// Planning time of this iteration.
    pub planning_time: Duration,
    /// Execution time of this iteration (the y-axis of Figure 5).
    pub execution_time: Duration,
    /// The relation subset whose estimate was corrected after this iteration, if any.
    pub corrected: Option<RelSet>,
    /// The Q-error of the corrected operator.
    pub q_error: f64,
    /// The number of estimates injected so far (cumulative).
    pub corrections_so_far: usize,
}

/// Run the selective-improvement simulation for a query.
///
/// Returns one record per executed iteration; the last iteration is the one where no
/// operator exceeded the threshold any more (or the iteration limit was hit).
pub fn selective_improvement(
    db: &mut Database,
    sql: &str,
    config: &SelectiveConfig,
) -> Result<Vec<SelectiveIteration>, DbError> {
    let statement = parse_sql(sql)?;
    let select = statement
        .query()
        .ok_or_else(|| DbError::Reoptimization("selective improvement needs a SELECT".into()))?
        .clone();
    // Under a LIMIT the pipelined executor may stop pulling early, so some operators
    // report truncated actual_rows. Detection and correction below only consume
    // *exhausted* operator counts (operators that ran to completion), which keeps
    // truncated counts from ever being injected as truth — LIMIT queries simply see
    // fewer correctable operators.

    let mut injected = CardinalityOverrides::new();
    let mut iterations = Vec::new();

    for iteration in 0..config.max_iterations {
        let (planned, planning_time) = db.plan_select_with_overrides(&select, &injected)?;
        let result = reopt_executor::execute_plan(&planned.plan, db.storage())?;

        // Find the lowest operator whose estimate is off by more than the threshold.
        let offending = lowest_mis_estimated(&result.metrics.root, config.threshold);

        match offending {
            None => {
                iterations.push(SelectiveIteration {
                    iteration,
                    planning_time,
                    execution_time: result.metrics.execution_time,
                    corrected: None,
                    q_error: 1.0,
                    corrections_so_far: injected.len(),
                });
                break;
            }
            Some(node) => {
                // Correct this operator's estimate and every *exhausted* estimate
                // below it (truncated counts are never true cardinalities).
                let mut corrected_sets = 0;
                node.walk(&mut |descendant| {
                    let set = descendant.metrics.rel_set;
                    if !set.is_empty() && descendant.metrics.exhausted {
                        injected.set(set, descendant.metrics.actual_rows as f64);
                        corrected_sets += 1;
                    }
                });
                iterations.push(SelectiveIteration {
                    iteration,
                    planning_time,
                    execution_time: result.metrics.execution_time,
                    corrected: Some(node.metrics.rel_set),
                    q_error: node.metrics.q_error(),
                    corrections_so_far: injected.len(),
                });
            }
        }
    }
    Ok(iterations)
}

/// The lowest (smallest relation set, deepest) operator whose Q-error exceeds the
/// threshold, if any.
fn lowest_mis_estimated(root: &MetricsNode, threshold: f64) -> Option<&MetricsNode> {
    let mut candidates: Vec<(usize, usize, &MetricsNode)> = Vec::new();
    collect_with_depth(root, 0, &mut candidates);
    candidates
        .into_iter()
        .filter(|(_, _, node)| {
            node.metrics.exhausted
                && !node.metrics.rel_set.is_empty()
                && node.metrics.q_error() > threshold
        })
        .min_by(|a, b| {
            a.2.metrics
                .rel_set
                .len()
                .cmp(&b.2.metrics.rel_set.len())
                .then(b.1.cmp(&a.1))
                .then(a.0.cmp(&b.0))
        })
        .map(|(_, _, node)| node)
}

fn collect_with_depth<'a>(
    node: &'a MetricsNode,
    depth: usize,
    out: &mut Vec<(usize, usize, &'a MetricsNode)>,
) {
    out.push((out.len(), depth, node));
    for child in &node.children {
        collect_with_depth(child, depth + 1, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::test_database;

    const SKEWED_SQL: &str = "SELECT count(*) AS c
        FROM title AS t, movie_keyword AS mk, keyword AS k
        WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
          AND k.keyword = 'kw0' AND t.production_year > 1985";

    #[test]
    fn iterations_terminate_with_no_remaining_error() {
        let mut db = test_database();
        let config = SelectiveConfig {
            threshold: 4.0,
            max_iterations: 16,
        };
        let iterations = selective_improvement(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(!iterations.is_empty());
        // The first iteration must have detected the skewed join.
        assert!(iterations[0].corrected.is_some());
        assert!(iterations[0].q_error > 4.0);
        // The last iteration is clean.
        let last = iterations.last().unwrap();
        assert!(last.corrected.is_none());
        assert!(last.corrections_so_far >= 1);
        // Iteration numbers are consecutive.
        for (idx, record) in iterations.iter().enumerate() {
            assert_eq!(record.iteration, idx);
        }
    }

    #[test]
    fn well_estimated_query_needs_no_corrections() {
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM title AS t WHERE t.production_year > 2000";
        let iterations =
            selective_improvement(&mut db, sql, &SelectiveConfig::default()).unwrap();
        assert_eq!(iterations.len(), 1);
        assert!(iterations[0].corrected.is_none());
        assert_eq!(iterations[0].corrections_so_far, 0);
    }

    #[test]
    fn iteration_limit_is_respected() {
        let mut db = test_database();
        let config = SelectiveConfig {
            threshold: 1.0001, // essentially everything is "wrong"
            max_iterations: 3,
        };
        let iterations = selective_improvement(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(iterations.len() <= 3);
    }

    #[test]
    fn rejects_non_select() {
        let mut db = test_database();
        assert!(selective_improvement(&mut db, "garbage", &SelectiveConfig::default()).is_err());
    }

    #[test]
    fn truncated_counts_under_limit_are_never_injected() {
        // The LIMIT stops the scan after 3 rows, so its actual_rows is a truncated
        // count: no operator is both exhausted and correctable, and the simulation
        // converges immediately without injecting anything.
        let mut db = test_database();
        let sql = "SELECT t.id AS i FROM title AS t WHERE t.production_year > 1985 LIMIT 3";
        let config = SelectiveConfig {
            threshold: 1.0001, // everything exhausted would be "wrong"
            max_iterations: 4,
        };
        let iterations = selective_improvement(&mut db, sql, &config).unwrap();
        assert_eq!(iterations[0].corrections_so_far, 0);
        assert!(iterations[0].corrected.is_none());
    }
}
