//! Selective improvement of cardinality estimates (Section IV-E, Figure 5).
//!
//! LEO-style systems observe estimation errors during execution and correct the
//! estimates for *future* executions of similar queries. The paper simulates the best
//! case of that strategy: repeatedly execute the same query, find the lowest operator in
//! the plan whose estimate is off by more than a threshold, fix that operator's estimate
//! (and every estimate below it) to the true value, and re-plan. Figure 5 plots the
//! per-iteration execution time and shows that (a) dozens of corrections can be needed
//! before a good plan appears and (b) correcting only a subset of estimates can
//! transiently make the plan *worse* than the original.
//!
//! The simulation is one inject-restart loop among several, so it runs on the unified
//! policy driver: [`selective_improvement`] is a thin wrapper that executes the query
//! under [`SelectivePolicy`] via [`execute_with_policy`] and maps the report's rounds
//! back onto the per-iteration records Figure 5 plots.

use crate::database::Database;
use crate::error::DbError;
use crate::policy::SelectivePolicy;
use crate::qerror::DEFAULT_REOPT_THRESHOLD;
use crate::reopt::execute_with_policy;
use reopt_planner::RelSet;
use std::time::Duration;

/// Configuration for the selective-improvement simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectiveConfig {
    /// Q-error threshold above which an operator's estimate is considered wrong
    /// (the paper uses 32).
    pub threshold: f64,
    /// Upper bound on the number of iterations.
    pub max_iterations: usize,
}

impl Default for SelectiveConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_REOPT_THRESHOLD,
            max_iterations: 64,
        }
    }
}

/// One iteration of the simulation.
#[derive(Debug, Clone)]
pub struct SelectiveIteration {
    /// Iteration number (0 = the original plan).
    pub iteration: usize,
    /// Planning time of this iteration.
    pub planning_time: Duration,
    /// Execution time of this iteration (the y-axis of Figure 5).
    pub execution_time: Duration,
    /// The relation subset whose estimate was corrected after this iteration. `None`
    /// means the iteration was clean; on the *final* iteration of a budget-exhausted
    /// run this instead reports the subset that still violated the threshold (no
    /// correction was applied — the budget was spent), so non-convergence is never
    /// mistaken for convergence.
    pub corrected: Option<RelSet>,
    /// The Q-error of the corrected (or, on a budget-exhausted final iteration,
    /// still-violating) operator; 1.0 when the iteration was clean.
    pub q_error: f64,
    /// The number of *distinct* subsets corrected so far (cumulative; re-correcting
    /// an already-corrected subtree does not inflate the count).
    pub corrections_so_far: usize,
}

/// Run the selective-improvement simulation for a query.
///
/// Returns one record per executed iteration; the last iteration is the one where no
/// operator exceeded the threshold any more (or the iteration limit was hit).
///
/// Detection and correction only consume *exhausted* operator counts (operators whose
/// whole subtree ran to completion), which keeps counts truncated by a LIMIT from
/// ever being injected as truth — such queries simply see fewer correctable
/// operators. Re-planning itself is additionally gated by the driver's shared safety
/// rules (wildcard selects and order-sensitive LIMIT outputs run plain).
pub fn selective_improvement(
    db: &mut Database,
    sql: &str,
    config: &SelectiveConfig,
) -> Result<Vec<SelectiveIteration>, DbError> {
    // `max_iterations` counts *executions*; the final execution is the driver's
    // budget-exhausted (or converged) run, so the policy gets one less round.
    let mut policy = SelectivePolicy::new(
        config.threshold,
        config.max_iterations.saturating_sub(1),
    );
    let report = execute_with_policy(db, sql, &mut policy)?;
    let distinct = policy.distinct_corrections_by_round();

    let mut iterations = Vec::new();
    let mut round_planning = Duration::ZERO;
    for (iteration, round) in report.rounds.iter().enumerate() {
        round_planning += round.planning_time;
        iterations.push(SelectiveIteration {
            iteration,
            planning_time: round.planning_time,
            execution_time: round.detection_time,
            corrected: Some(round.rel_set),
            q_error: round.q_error,
            corrections_so_far: distinct.get(iteration).copied().unwrap_or(0),
        });
    }
    // The final run. No correction was applied after it — but it only counts as
    // *converged* if nothing exceeds the threshold any more; when the iteration
    // budget was spent first, report the still-violating operator honestly instead
    // of pretending the loop finished.
    let (corrected, q_error) = report
        .final_metrics
        .as_ref()
        .and_then(|metrics| metrics.root.lowest_mis_estimated(config.threshold))
        .map(|node| (Some(node.metrics.rel_set), node.metrics.q_error()))
        .unwrap_or((None, 1.0));
    iterations.push(SelectiveIteration {
        iteration: report.rounds.len(),
        planning_time: report.planning_time.saturating_sub(round_planning),
        execution_time: report
            .final_metrics
            .as_ref()
            .map(|m| m.execution_time)
            .unwrap_or(report.execution_time),
        corrected,
        q_error,
        corrections_so_far: distinct.last().copied().unwrap_or(0),
    });
    Ok(iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::test_database;

    const SKEWED_SQL: &str = "SELECT count(*) AS c
        FROM title AS t, movie_keyword AS mk, keyword AS k
        WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
          AND k.keyword = 'kw0' AND t.production_year > 1985";

    #[test]
    fn iterations_terminate_with_no_remaining_error() {
        let mut db = test_database();
        let config = SelectiveConfig {
            threshold: 4.0,
            max_iterations: 16,
        };
        let iterations = selective_improvement(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(!iterations.is_empty());
        // The first iteration must have detected the skewed join.
        assert!(iterations[0].corrected.is_some());
        assert!(iterations[0].q_error > 4.0);
        // The last iteration is clean.
        let last = iterations.last().unwrap();
        assert!(last.corrected.is_none());
        assert!(last.corrections_so_far >= 1);
        // Iteration numbers are consecutive.
        for (idx, record) in iterations.iter().enumerate() {
            assert_eq!(record.iteration, idx);
        }
    }

    #[test]
    fn well_estimated_query_needs_no_corrections() {
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM title AS t WHERE t.production_year > 2000";
        let iterations =
            selective_improvement(&mut db, sql, &SelectiveConfig::default()).unwrap();
        assert_eq!(iterations.len(), 1);
        assert!(iterations[0].corrected.is_none());
        assert_eq!(iterations[0].corrections_so_far, 0);
    }

    #[test]
    fn iteration_limit_is_respected() {
        let mut db = test_database();
        let config = SelectiveConfig {
            threshold: 1.0001, // essentially everything is "wrong"
            max_iterations: 3,
        };
        let iterations = selective_improvement(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(iterations.len() <= 3);
    }

    #[test]
    fn rejects_non_select() {
        let mut db = test_database();
        assert!(selective_improvement(&mut db, "garbage", &SelectiveConfig::default()).is_err());
    }

    #[test]
    fn truncated_counts_under_limit_are_never_injected() {
        // The LIMIT stops the scan after 3 rows, so its actual_rows is a truncated
        // count: no operator is both exhausted and correctable, and the simulation
        // converges immediately without injecting anything.
        let mut db = test_database();
        let sql = "SELECT t.id AS i FROM title AS t WHERE t.production_year > 1985 LIMIT 3";
        let config = SelectiveConfig {
            threshold: 1.0001, // everything exhausted would be "wrong"
            max_iterations: 4,
        };
        let iterations = selective_improvement(&mut db, sql, &config).unwrap();
        assert_eq!(iterations[0].corrections_so_far, 0);
        assert!(iterations[0].corrected.is_none());
    }
}
