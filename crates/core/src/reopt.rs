//! The re-optimization controller (Section V of the paper).
//!
//! The paper simulates a simple mid-query re-optimization scheme:
//!
//! 1. Run the query with EXPLAIN ANALYZE and compare, for every join operator, the true
//!    output cardinality with the optimizer's estimate.
//! 2. Take the **lowest** join whose Q-error exceeds a threshold (32 in the paper's
//!    chosen configuration) and rewrite that sub-join as `CREATE TEMP TABLE … AS SELECT`.
//! 3. Replace the materialized relations in the remainder of the query with the
//!    temporary table and re-plan.
//! 4. Repeat until no join operator exceeds the threshold.
//!
//! The reported *planning time* is the planning time of the original query plus the
//! planning time of every rewritten SELECT; the reported *execution time* is the
//! execution time of every `CREATE TEMP TABLE` plus the final SELECT (the paper does not
//! charge the temp-table planning, and the intermediate detection runs are an artifact
//! of the simulation, not of the simulated system). Both are surfaced separately in the
//! [`ReoptReport`], along with the detection cost for transparency.
//!
//! Two modes are provided:
//!
//! * [`ReoptMode::Materialize`] — the paper's scheme (temporary tables, full
//!   materialization cost, statistics on the temp table give the re-planner the true
//!   cardinality of the materialized sub-join).
//! * [`ReoptMode::InjectOnly`] — an optimistic variant that skips materialization and
//!   only injects the observed cardinality before re-planning the *original* query; it
//!   bounds from below the cost a more sophisticated in-flight re-optimizer (e.g.
//!   Rio-style proactive plans) could achieve, and is used by the ablation benches.

use crate::database::Database;
use crate::error::DbError;
use crate::qerror::DEFAULT_REOPT_THRESHOLD;
use reopt_expr::{ColumnRef, Expr};
use reopt_planner::{CardinalityOverrides, QuerySpec, RelSet};
use reopt_sql::{parse_sql, SelectExpr, SelectItem, SelectStatement, Statement, TableRef};
use reopt_storage::Row;
use std::collections::BTreeSet;
use std::time::Duration;

/// How the controller applies what it learned from a mis-estimated join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptMode {
    /// Materialize the mis-estimated sub-join into a temporary table and rewrite the
    /// remainder of the query around it (the paper's simulation).
    Materialize,
    /// Only inject the observed cardinality into the estimator and re-plan the original
    /// query (no materialization cost; an optimistic lower bound).
    InjectOnly,
}

/// Re-optimization configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptConfig {
    /// Q-error threshold that triggers re-optimization (the paper uses 32).
    pub threshold: f64,
    /// Maximum number of materialize-and-replan rounds.
    pub max_rounds: usize,
    /// Materialize or inject-only.
    pub mode: ReoptMode,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_REOPT_THRESHOLD,
            max_rounds: 16,
            mode: ReoptMode::Materialize,
        }
    }
}

impl ReoptConfig {
    /// A configuration with a specific threshold (used by the Figure-7 sweep).
    pub fn with_threshold(threshold: f64) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }
}

/// One re-optimization round.
#[derive(Debug, Clone)]
pub struct ReoptRound {
    /// The aliases of the relations that were materialized (or whose cardinality was
    /// injected).
    pub materialized_aliases: Vec<String>,
    /// The temporary table name (Materialize mode only).
    pub temp_table: Option<String>,
    /// The optimizer's estimate for the offending join.
    pub estimated_rows: f64,
    /// The observed cardinality of the offending join.
    pub actual_rows: u64,
    /// The Q-error that triggered this round.
    pub q_error: f64,
    /// The `CREATE TEMP TABLE` statement issued (Materialize mode only), as SQL text.
    pub create_sql: Option<String>,
    /// Execution time of the materialization.
    pub materialization_time: Duration,
}

/// The outcome of running a query under the re-optimization scheme.
#[derive(Debug, Clone)]
pub struct ReoptReport {
    /// The rounds that were triggered (empty when the first plan was good enough).
    pub rounds: Vec<ReoptRound>,
    /// The rows of the final query.
    pub final_rows: Vec<Row>,
    /// Planning time: original query + every rewritten SELECT.
    pub planning_time: Duration,
    /// Execution time: every CREATE TEMP TABLE + the final SELECT.
    pub execution_time: Duration,
    /// Execution time spent in detection runs that were discarded after triggering a
    /// rewrite (not part of the paper's reported numbers; kept for transparency).
    pub detection_time: Duration,
    /// Largest peak of pipeline-breaker buffered rows across every executed statement
    /// (detection runs, materializations and the final SELECT).
    pub peak_buffered_rows: u64,
    /// The final re-optimized script (CREATE TEMP TABLE statements + final SELECT).
    pub final_sql: String,
}

impl ReoptReport {
    /// Whether any re-optimization round was triggered.
    pub fn reoptimized(&self) -> bool {
        !self.rounds.is_empty()
    }

    /// Planning + execution time (the end-to-end latency the paper's Figure 1 reports).
    pub fn total_time(&self) -> Duration {
        self.planning_time + self.execution_time
    }
}

/// Run a query under the re-optimization scheme.
pub fn execute_with_reoptimization(
    db: &mut Database,
    sql: &str,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let statement = parse_sql(sql)?;
    let select = statement
        .query()
        .ok_or_else(|| DbError::Reoptimization("re-optimization needs a SELECT".into()))?
        .clone();
    match config.mode {
        ReoptMode::Materialize => materialize_loop(db, select, config),
        ReoptMode::InjectOnly => inject_loop(db, select, config),
    }
}

fn materialize_loop(
    db: &mut Database,
    original: SelectStatement,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let mut current = original;
    let mut rounds: Vec<ReoptRound> = Vec::new();
    let mut planning_time = Duration::ZERO;
    let mut materialization_time = Duration::ZERO;
    let mut detection_time = Duration::ZERO;
    let mut created_sql: Vec<String> = Vec::new();
    let mut temp_counter = 0usize;
    let mut peak_buffered_rows = 0u64;

    // A wildcard select cannot be rewritten around a temp table: the rewrite
    // renames subset columns to their mangled `alias_column` form (and the
    // empty-`needed` fallback projects a placeholder), so `SELECT *` over the
    // rewritten FROM list would change the output schema. A query with a LIMIT
    // cannot be *detected* on: the pipelined executor stops pulling once the
    // limit is satisfied, so join actual_rows are truncated counts and their
    // q-errors are meaningless. Execute such queries once, unrewritten, and
    // report no rounds.
    let rewritable = current.limit.is_none()
        && !current
            .items
            .iter()
            .any(|item| matches!(item.expr, SelectExpr::Wildcard));

    loop {
        let output = db.execute_select(&current)?;
        planning_time += output.planning_time;
        peak_buffered_rows = peak_buffered_rows.max(output.peak_buffered_rows);
        let metrics = output.metrics.as_ref().expect("select produces metrics");
        let spec = output.spec.as_ref().expect("select produces a spec");

        let offending = if rewritable {
            metrics
                .root
                .joins_bottom_up()
                .into_iter()
                .find(|join| join.q_error() > config.threshold)
                .cloned()
        } else {
            None
        };

        let Some(bad_join) = offending else {
            // No join exceeds the threshold: this run is the final SELECT.
            let mut final_sql = created_sql.join("\n");
            if !final_sql.is_empty() {
                final_sql.push('\n');
            }
            final_sql.push_str(&current.to_sql());
            final_sql.push(';');
            let report = ReoptReport {
                rounds,
                final_rows: output.rows,
                planning_time,
                execution_time: materialization_time + output.execution_time,
                detection_time,
                peak_buffered_rows,
                final_sql,
            };
            db.drop_temporary_tables();
            return Ok(report);
        };

        if rounds.len() >= config.max_rounds {
            db.drop_temporary_tables();
            return Err(DbError::Reoptimization(format!(
                "exceeded {} re-optimization rounds",
                config.max_rounds
            )));
        }

        detection_time += output.execution_time;
        temp_counter += 1;
        let temp_name = format!("reopt_temp{temp_counter}");
        let subset = bad_join.rel_set;
        let aliases: Vec<String> = subset
            .iter()
            .map(|rel| spec.relations[rel].alias.clone())
            .collect();

        let (temp_query, rewritten) = materialize_subset(spec, &current, subset, &temp_name);
        let create_statement = Statement::CreateTableAs {
            name: temp_name.clone(),
            temporary: true,
            query: temp_query.clone(),
        };
        let create_output = db.create_table_as(&temp_name, true, &temp_query)?;
        materialization_time += create_output.execution_time;
        peak_buffered_rows = peak_buffered_rows.max(create_output.peak_buffered_rows);

        rounds.push(ReoptRound {
            materialized_aliases: aliases,
            temp_table: Some(temp_name),
            estimated_rows: bad_join.estimated_rows,
            actual_rows: bad_join.actual_rows,
            q_error: bad_join.q_error(),
            create_sql: Some(create_statement.to_sql()),
            materialization_time: create_output.execution_time,
        });
        created_sql.push(format!("{};", create_statement.to_sql()));
        current = rewritten;
    }
}

fn inject_loop(
    db: &mut Database,
    original: SelectStatement,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let mut injected = CardinalityOverrides::new();
    let mut rounds: Vec<ReoptRound> = Vec::new();
    let mut planning_time = Duration::ZERO;
    let mut detection_time = Duration::ZERO;
    let mut peak_buffered_rows = 0u64;
    // As in `materialize_loop`: under a LIMIT the pipelined executor's join
    // actual_rows are truncated counts, so never treat them as true cardinalities.
    let detectable = original.limit.is_none();

    loop {
        let (planned, plan_time) = db.plan_select_with_overrides(&original, &injected)?;
        planning_time += plan_time;
        let result = reopt_executor::execute_plan(&planned.plan, db.storage())?;
        peak_buffered_rows = peak_buffered_rows.max(result.peak_buffered_rows);

        let offending = if detectable {
            result
                .metrics
                .root
                .joins_bottom_up()
                .into_iter()
                .find(|join| join.q_error() > config.threshold)
                .cloned()
        } else {
            None
        };

        let Some(bad_join) = offending else {
            return Ok(ReoptReport {
                rounds,
                final_rows: result.rows,
                planning_time,
                execution_time: result.metrics.execution_time,
                detection_time,
                peak_buffered_rows,
                final_sql: format!("{};", original.to_sql()),
            });
        };
        if rounds.len() >= config.max_rounds {
            return Err(DbError::Reoptimization(format!(
                "exceeded {} re-optimization rounds",
                config.max_rounds
            )));
        }
        detection_time += result.metrics.execution_time;
        let aliases: Vec<String> = bad_join
            .rel_set
            .iter()
            .map(|rel| planned.spec.relations[rel].alias.clone())
            .collect();
        injected.set(bad_join.rel_set, bad_join.actual_rows as f64);
        rounds.push(ReoptRound {
            materialized_aliases: aliases,
            temp_table: None,
            estimated_rows: bad_join.estimated_rows,
            actual_rows: bad_join.actual_rows,
            q_error: bad_join.q_error(),
            create_sql: None,
            materialization_time: Duration::ZERO,
        });
    }
}

/// Split a query around a relation subset: the subset becomes a `CREATE TEMP TABLE`
/// defining query and the remainder is rewritten to reference the temporary table
/// (Figure 6 of the paper).
pub fn materialize_subset(
    spec: &QuerySpec,
    current: &SelectStatement,
    subset: RelSet,
    temp_name: &str,
) -> (SelectStatement, SelectStatement) {
    let in_subset = |reference: &ColumnRef| -> bool {
        reference
            .qualifier
            .as_deref()
            .and_then(|alias| spec.relation_by_alias(alias))
            .map(|rel| subset.contains(rel))
            .unwrap_or(false)
    };

    // Columns of the subset that the remainder of the query still needs: anything
    // referenced by the SELECT list, GROUP BY, ORDER BY, a join edge crossing the
    // boundary, or a complex predicate not fully inside the subset.
    let mut needed: BTreeSet<ColumnRef> = BTreeSet::new();
    let note_refs = |needed: &mut BTreeSet<ColumnRef>, expr: &Expr| {
        let mut refs = Vec::new();
        reopt_expr::collect_column_refs(expr, &mut refs);
        for reference in refs {
            if in_subset(&reference) {
                needed.insert(reference);
            }
        }
    };
    for item in &current.items {
        match &item.expr {
            SelectExpr::Scalar(expr) => note_refs(&mut needed, expr),
            SelectExpr::Aggregate { arg: Some(expr), .. } => note_refs(&mut needed, expr),
            _ => {}
        }
    }
    for expr in &current.group_by {
        note_refs(&mut needed, expr);
    }
    for item in &current.order_by {
        note_refs(&mut needed, &item.expr);
    }
    for edge in &spec.join_edges {
        let inside = subset.contains(edge.left_rel) as usize + subset.contains(edge.right_rel) as usize;
        if inside == 1 {
            if subset.contains(edge.left_rel) {
                needed.insert(edge.left_column.clone());
            } else {
                needed.insert(edge.right_column.clone());
            }
        }
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if !pred_set.is_subset_of(subset) {
            note_refs(&mut needed, predicate);
        }
    }

    // The temp table's defining query: project the needed columns as `alias_column`.
    let temp_items: Vec<SelectItem> = if needed.is_empty() {
        // Nothing from the subset is referenced outside it: the subset is the
        // whole query and the select list is bare `count(*)` (wildcard selects
        // never reach the rewrite, see `materialize_loop`). The temp table must
        // still hold ONE ROW PER JOIN ROW — materializing the aggregate itself
        // would make the rewritten `count(*)` count a single row.
        vec![SelectItem {
            expr: SelectExpr::Scalar(Expr::Literal(reopt_storage::Value::Int(1))),
            alias: Some("materialized_row".into()),
        }]
    } else {
        needed
            .iter()
            .map(|reference| SelectItem {
                expr: SelectExpr::Scalar(Expr::Column(reference.clone())),
                alias: Some(mangled_name(reference)),
            })
            .collect()
    };

    let mut temp_predicates: Vec<Expr> = Vec::new();
    for rel in subset.iter() {
        temp_predicates.extend(spec.local_predicates[rel].iter().cloned());
    }
    for edge in spec.edges_within(subset) {
        temp_predicates.push(edge.to_expr());
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if pred_set.is_subset_of(subset) {
            temp_predicates.push(predicate.clone());
        }
    }
    let temp_query = SelectStatement {
        items: temp_items,
        from: subset
            .iter()
            .map(|rel| {
                let relation = &spec.relations[rel];
                TableRef::aliased(relation.table.clone(), relation.alias.clone())
            })
            .collect(),
        where_clause: reopt_expr::conjoin(&temp_predicates),
        group_by: vec![],
        order_by: vec![],
        limit: None,
    };

    // The rewritten remainder: replace subset relations with the temp table and remap
    // every reference into the subset onto the temp table's mangled column names.
    let remap = |reference: &ColumnRef| -> ColumnRef {
        if in_subset(reference) {
            ColumnRef::qualified(temp_name, mangled_name(reference))
        } else {
            reference.clone()
        }
    };
    let remap_expr = |expr: &Expr| expr.map_column_refs(&remap);

    let rewritten_items: Vec<SelectItem> = current
        .items
        .iter()
        .map(|item| SelectItem {
            expr: match &item.expr {
                SelectExpr::Wildcard => SelectExpr::Wildcard,
                SelectExpr::Scalar(expr) => SelectExpr::Scalar(remap_expr(expr)),
                SelectExpr::Aggregate { func, arg } => SelectExpr::Aggregate {
                    func: *func,
                    arg: arg.as_ref().map(&remap_expr),
                },
            },
            alias: item.alias.clone(),
        })
        .collect();

    let mut rewritten_from: Vec<TableRef> = spec
        .relations
        .iter()
        .filter(|relation| !subset.contains(relation.index))
        .map(|relation| TableRef::aliased(relation.table.clone(), relation.alias.clone()))
        .collect();
    rewritten_from.push(TableRef::new(temp_name));

    let mut rewritten_predicates: Vec<Expr> = Vec::new();
    for relation in &spec.relations {
        if !subset.contains(relation.index) {
            rewritten_predicates.extend(spec.local_predicates[relation.index].iter().cloned());
        }
    }
    for edge in &spec.join_edges {
        let fully_inside = subset.contains(edge.left_rel) && subset.contains(edge.right_rel);
        if !fully_inside {
            rewritten_predicates.push(remap_expr(&edge.to_expr()));
        }
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if !pred_set.is_subset_of(subset) {
            rewritten_predicates.push(remap_expr(predicate));
        }
    }

    let rewritten = SelectStatement {
        items: rewritten_items,
        from: rewritten_from,
        where_clause: reopt_expr::conjoin(&rewritten_predicates),
        group_by: current.group_by.iter().map(&remap_expr).collect(),
        order_by: current
            .order_by
            .iter()
            .map(|item| reopt_sql::OrderByItem {
                expr: remap_expr(&item.expr),
                ascending: item.ascending,
            })
            .collect(),
        limit: current.limit,
    };

    (temp_query, rewritten)
}

/// The column name a subset column gets inside the temporary table (`alias_column`).
fn mangled_name(reference: &ColumnRef) -> String {
    match &reference.qualifier {
        Some(qualifier) => format!("{qualifier}_{}", reference.name),
        None => reference.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::test_database;
    use reopt_planner::bind_select;
    use reopt_storage::Value;

    /// The skewed query: keyword 'kw0' is attached to every movie, so the default
    /// estimator badly underestimates the mk ⋈ k join.
    const SKEWED_SQL: &str = "SELECT min(t.title) AS movie_title, count(*) AS c
        FROM title AS t, movie_keyword AS mk, keyword AS k
        WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
          AND k.keyword = 'kw0' AND t.production_year > 1985";

    #[test]
    fn rewrite_splits_query_like_figure_6() {
        let db = test_database();
        let statement = parse_sql(SKEWED_SQL).unwrap();
        let select = statement.query().unwrap().clone();
        let spec = bind_select(&select, db.storage()).unwrap();
        let mk = spec.relation_by_alias("mk").unwrap();
        let k = spec.relation_by_alias("k").unwrap();
        let subset = RelSet::from_indexes([mk, k]);

        let (temp_query, rewritten) = materialize_subset(&spec, &select, subset, "temp1");
        let temp_sql = temp_query.to_sql();
        let rewritten_sql = rewritten.to_sql();

        // The temp query selects the join column needed by the remainder and applies
        // the keyword filter plus the mk-k join condition.
        assert!(temp_sql.contains("mk.movie_id AS mk_movie_id"));
        assert!(temp_sql.contains("k.keyword = 'kw0'"));
        assert!(temp_sql.contains("movie_keyword AS mk"));
        assert!(!temp_sql.contains("title"));

        // The rewritten query references the temp table and drops the materialized
        // relations.
        assert!(rewritten_sql.contains("temp1"));
        assert!(rewritten_sql.contains("t.id = temp1.mk_movie_id"));
        assert!(!rewritten_sql.contains("movie_keyword"));
        assert!(!rewritten_sql.contains("keyword AS k"));
        assert!(rewritten_sql.contains("t.production_year > 1985"));

        // Both render to parseable SQL.
        assert!(parse_sql(&format!("{temp_sql};")).is_ok());
        assert!(parse_sql(&format!("{rewritten_sql};")).is_ok());
    }

    #[test]
    fn materialize_mode_produces_correct_results() {
        let mut db = test_database();
        // Ground truth from a plain execution.
        let expected = db.execute(SKEWED_SQL).unwrap();

        let config = ReoptConfig {
            threshold: 4.0,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(report.reoptimized(), "expected at least one round");
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.final_sql.contains("CREATE TEMP TABLE reopt_temp1"));
        assert!(report.rounds[0].q_error > 4.0);
        assert!(report.rounds[0].create_sql.is_some());
        assert!(!report.rounds[0].materialized_aliases.is_empty());
        // Temporary tables are cleaned up.
        assert!(!db.storage().contains_table("reopt_temp1"));
        assert!(report.total_time() >= report.execution_time);
    }

    #[test]
    fn high_threshold_never_triggers() {
        let mut db = test_database();
        let config = ReoptConfig::with_threshold(1e9);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(!report.reoptimized());
        assert!(report.final_sql.ends_with(';'));
        assert_eq!(report.detection_time, Duration::ZERO);
        let expected = db.execute(SKEWED_SQL).unwrap();
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn inject_only_mode_matches_results_without_temp_tables() {
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::InjectOnly,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.reoptimized());
        assert!(report.rounds.iter().all(|r| r.temp_table.is_none()));
        assert_eq!(db.storage().table_count(), 3, "no temp tables left behind");
    }

    #[test]
    fn materializing_the_whole_query_keeps_count_semantics() {
        // A two-relation query whose only join IS the whole query: the offending
        // subset covers every relation and the select list is bare count(*), so
        // the temp table must materialize one row per join row, not the count.
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig::with_threshold(4.0);
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(report.reoptimized(), "skewed kw0 join must trigger");
        assert_eq!(report.final_rows, expected.rows);
        assert!(!db.storage().contains_table("reopt_temp1"));
    }

    #[test]
    fn wildcard_selects_execute_unrewritten() {
        // `SELECT *` cannot survive the temp-table rewrite (subset columns get
        // mangled names), so the controller must run it plain even when a join
        // is badly mis-estimated — and the rows must match plain execution.
        let mut db = test_database();
        let sql = "SELECT * FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let report =
            execute_with_reoptimization(&mut db, sql, &ReoptConfig::with_threshold(2.0)).unwrap();
        assert!(!report.reoptimized(), "wildcard queries must not be rewritten");
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.detection_time, Duration::ZERO);
    }

    #[test]
    fn limit_queries_execute_unrewritten() {
        // Under a LIMIT the pipelined executor stops pulling early, so join
        // actual_rows are truncated counts; the controller must not mistake them
        // for true cardinalities (and must not trigger rewrites from them).
        let mut db = test_database();
        let sql = "SELECT mk.movie_id AS m FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0' LIMIT 5";
        let expected = db.execute(sql).unwrap();
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly] {
            let config = ReoptConfig {
                threshold: 1.1,
                mode,
                ..Default::default()
            };
            let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
            assert!(!report.reoptimized(), "LIMIT queries must not be rewritten ({mode:?})");
            assert_eq!(report.final_rows, expected.rows, "{mode:?} changed the result");
        }
    }

    #[test]
    fn non_select_statements_are_rejected() {
        let mut db = test_database();
        // A parse failure surfaces as a parse error, not a panic.
        let err = execute_with_reoptimization(&mut db, "NOT SQL", &ReoptConfig::default());
        assert!(err.is_err());
    }

    /// The worst join Q-error observed when executing `sql` with the default
    /// estimator — the quantity the controller compares against its threshold.
    fn worst_join_q_error(db: &mut Database, sql: &str) -> f64 {
        let output = db.execute(sql).unwrap();
        output
            .metrics
            .as_ref()
            .unwrap()
            .root
            .joins_bottom_up()
            .iter()
            .map(|j| j.q_error())
            .fold(1.0f64, f64::max)
    }

    #[test]
    fn threshold_just_below_worst_q_error_triggers_replanning() {
        let mut db = test_database();
        let worst = worst_join_q_error(&mut db, SKEWED_SQL);
        assert!(worst > 1.0, "the skewed query must show estimation error");

        let config = ReoptConfig::with_threshold(worst * 0.99);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            report.reoptimized(),
            "threshold {} below worst q-error {worst} must trigger",
            worst * 0.99
        );
        assert!(report.rounds[0].q_error > config.threshold);
    }

    #[test]
    fn threshold_just_above_worst_q_error_skips_replanning() {
        let mut db = test_database();
        let worst = worst_join_q_error(&mut db, SKEWED_SQL);

        let config = ReoptConfig::with_threshold(worst * 1.01);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            !report.reoptimized(),
            "threshold {} above worst q-error {worst} must not trigger",
            worst * 1.01
        );
        // A skipped controller charges no detection time and leaves no rounds.
        assert!(report.rounds.is_empty());
        assert_eq!(report.detection_time, Duration::ZERO);
    }

    #[test]
    fn reoptimized_count_matches_plain_execution_on_unskewed_query() {
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM title AS t, movie_keyword AS mk
                   WHERE t.id = mk.movie_id AND t.production_year > 2010";
        let expected = db.execute(sql).unwrap();
        let report =
            execute_with_reoptimization(&mut db, sql, &ReoptConfig::with_threshold(2.0)).unwrap();
        assert_eq!(report.final_rows[0].value(0), expected.rows[0].value(0));
        assert_eq!(
            report.final_rows[0].value(0).as_int().unwrap(),
            expected.rows[0].value(0).as_int().unwrap()
        );
        assert_ne!(expected.rows[0].value(0), &Value::Int(0));
    }
}
