//! The re-optimization controller (Section V of the paper).
//!
//! The paper simulates a simple mid-query re-optimization scheme:
//!
//! 1. Run the query with EXPLAIN ANALYZE and compare, for every join operator, the true
//!    output cardinality with the optimizer's estimate.
//! 2. Take the **lowest** join whose Q-error exceeds a threshold (32 in the paper's
//!    chosen configuration) and rewrite that sub-join as `CREATE TEMP TABLE … AS SELECT`.
//! 3. Replace the materialized relations in the remainder of the query with the
//!    temporary table and re-plan.
//! 4. Repeat until no join operator exceeds the threshold.
//!
//! The reported *planning time* is the planning time of the original query plus the
//! planning time of every rewritten SELECT; the reported *execution time* is the
//! execution time of every `CREATE TEMP TABLE` plus the final SELECT (the paper does not
//! charge the temp-table planning, and the intermediate detection runs are an artifact
//! of the simulation, not of the simulated system). Both are surfaced separately in the
//! [`ReoptReport`], along with the detection cost for transparency.
//!
//! Three modes are provided:
//!
//! * [`ReoptMode::Materialize`] — the paper's scheme (temporary tables, full
//!   materialization cost, statistics on the temp table give the re-planner the true
//!   cardinality of the materialized sub-join). Detection requires a *restart*: a full
//!   execution of the current query whose per-join true cardinalities are compared
//!   against the estimates afterwards.
//! * [`ReoptMode::InjectOnly`] — an optimistic variant that skips materialization and
//!   only injects the observed cardinality before re-planning the *original* query; it
//!   bounds from below the cost a more sophisticated in-flight re-optimizer (e.g.
//!   Rio-style proactive plans) could achieve, and is used by the ablation benches.
//! * [`ReoptMode::MidQuery`] — goes beyond the paper: true *mid-flight*
//!   re-optimization on the executor's batch seam. A
//!   [`BreakerMonitor`] watches every
//!   pipeline-breaker completion (hash-join build drained, nested-loop inner
//!   buffered, merge/aggregate/sort input consumed — the first points where true
//!   subtree cardinalities exist, even under a LIMIT). When a completed, reusable
//!   subtree's q-error exceeds the threshold, execution suspends; the breaker's rows
//!   are registered as a virtual leaf table with true statistics, the remaining join
//!   order is re-planned from the collapsed query
//!   ([`reopt_planner::collapse_spec`]) with every observed cardinality re-injected
//!   ([`reopt_planner::remap_rel_set`]), and execution resumes on the new plan —
//!   reusing the already-built state instead of re-executing it.
//!
//! Detection in the restart modes only consumes **exhausted** operator counts
//! ([`OperatorMetrics::exhausted`](reopt_executor::OperatorMetrics::exhausted)):
//! operators truncated by early termination under a LIMIT report partial
//! `actual_rows`, which must never be mistaken for true cardinalities. Fully-drained
//! operators (including every breaker input) are fair game, which makes *detection*
//! under LIMIT safe; the *rewrite* additionally requires the output to be
//! plan-order-insensitive (single-row aggregates — see `reopt_safe_under_limit`),
//! because a multi-row output truncated by a LIMIT could keep a different subset
//! under a different join order.

use crate::database::Database;
use crate::error::DbError;
use crate::qerror::{q_error, DEFAULT_REOPT_THRESHOLD};
use reopt_executor::{
    BreakerDecision, BreakerEvent, BreakerMonitor, BreakerState, ExecError, Executor,
    QueryMetrics,
};
use reopt_expr::{ColumnRef, Expr};
use reopt_planner::{collapse_spec, remap_rel_set, CardinalityOverrides, QuerySpec, RelSet};
use reopt_sql::{parse_sql, SelectExpr, SelectItem, SelectStatement, Statement, TableRef};
use reopt_storage::Row;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// How the controller applies what it learned from a mis-estimated join.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptMode {
    /// Materialize the mis-estimated sub-join into a temporary table and rewrite the
    /// remainder of the query around it (the paper's simulation).
    Materialize,
    /// Only inject the observed cardinality into the estimator and re-plan the original
    /// query (no materialization cost; an optimistic lower bound).
    InjectOnly,
    /// Suspend the running pipeline at the pipeline-breaker boundary where the
    /// mis-estimate surfaced, reuse the completed breaker state as a virtual leaf
    /// table, and re-plan only the remaining join order (true mid-query
    /// re-optimization; no detection restart, no re-execution of finished work).
    MidQuery,
}

/// Whether a round restarted the query or re-planned it mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptRoundKind {
    /// The round came from a detection run that executed the query to completion and
    /// restarted it ([`ReoptMode::Materialize`] / [`ReoptMode::InjectOnly`]).
    Restart,
    /// The round suspended a running pipeline at a breaker boundary and resumed on a
    /// re-planned remainder ([`ReoptMode::MidQuery`]).
    MidQuery,
}

impl std::fmt::Display for ReoptRoundKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReoptRoundKind::Restart => write!(f, "restart"),
            ReoptRoundKind::MidQuery => write!(f, "mid-query"),
        }
    }
}

/// Re-optimization configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptConfig {
    /// Q-error threshold that triggers re-optimization (the paper uses 32).
    pub threshold: f64,
    /// Maximum number of materialize-and-replan rounds.
    pub max_rounds: usize,
    /// Materialize or inject-only.
    pub mode: ReoptMode,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_REOPT_THRESHOLD,
            max_rounds: 16,
            mode: ReoptMode::Materialize,
        }
    }
}

impl ReoptConfig {
    /// A configuration with a specific threshold (used by the Figure-7 sweep).
    ///
    /// # Examples
    ///
    /// ```
    /// use reopt_core::{ReoptConfig, ReoptMode};
    ///
    /// // The paper's configuration: materialize-and-replan at q-error 32.
    /// let config = ReoptConfig::default();
    /// assert_eq!(config.threshold, 32.0);
    /// assert_eq!(config.mode, ReoptMode::Materialize);
    ///
    /// // A mid-query configuration with a custom trigger threshold.
    /// let config = ReoptConfig {
    ///     mode: ReoptMode::MidQuery,
    ///     ..ReoptConfig::with_threshold(8.0)
    /// };
    /// assert_eq!(config.threshold, 8.0);
    /// ```
    pub fn with_threshold(threshold: f64) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }
}

/// One re-optimization round.
#[derive(Debug, Clone)]
pub struct ReoptRound {
    /// Whether this round restarted the query or re-planned it mid-flight.
    pub kind: ReoptRoundKind,
    /// The aliases of the relations that were materialized (or whose cardinality was
    /// injected).
    pub materialized_aliases: Vec<String>,
    /// The temporary table name (Materialize and MidQuery modes).
    pub temp_table: Option<String>,
    /// The optimizer's estimate for the offending join.
    pub estimated_rows: f64,
    /// The observed cardinality of the offending join.
    pub actual_rows: u64,
    /// The Q-error that triggered this round.
    pub q_error: f64,
    /// The `CREATE TEMP TABLE` statement issued (Materialize mode only), as SQL text.
    pub create_sql: Option<String>,
    /// Execution time of the materialization. For mid-query rounds this is only the
    /// cost of registering and analyzing the already-built breaker state.
    pub materialization_time: Duration,
    /// Rows of completed breaker state carried into the re-planned remainder instead
    /// of being re-executed (MidQuery rounds only).
    pub reused_rows: Option<u64>,
}

/// The outcome of running a query under the re-optimization scheme.
#[derive(Debug, Clone)]
pub struct ReoptReport {
    /// The rounds that were triggered (empty when the first plan was good enough).
    pub rounds: Vec<ReoptRound>,
    /// The rows of the final query.
    pub final_rows: Vec<Row>,
    /// Planning time: original query + every rewritten SELECT.
    pub planning_time: Duration,
    /// Execution time: every CREATE TEMP TABLE + the final SELECT.
    pub execution_time: Duration,
    /// Execution time spent in detection runs that were discarded after triggering a
    /// rewrite (not part of the paper's reported numbers; kept for transparency).
    pub detection_time: Duration,
    /// Largest peak of pipeline-breaker buffered rows across every executed statement
    /// (detection runs, materializations and the final SELECT).
    pub peak_buffered_rows: u64,
    /// The final re-optimized script (CREATE TEMP TABLE statements + final SELECT; for
    /// mid-query rounds, comment lines describing the reused breaker state + the
    /// collapsed final SELECT over the virtual tables).
    pub final_sql: String,
    /// The metrics tree of the final execution, when one ran to completion. Lets
    /// callers verify plan shape and state reuse (a mid-query round's virtual table
    /// appears as a scan whose `actual_rows` equals the reused row count).
    pub final_metrics: Option<QueryMetrics>,
}

impl ReoptReport {
    /// Whether any re-optimization round was triggered.
    pub fn reoptimized(&self) -> bool {
        !self.rounds.is_empty()
    }

    /// Planning + execution time (the end-to-end latency the paper's Figure 1 reports).
    pub fn total_time(&self) -> Duration {
        self.planning_time + self.execution_time
    }
}

/// Run a query under the re-optimization scheme.
pub fn execute_with_reoptimization(
    db: &mut Database,
    sql: &str,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let statement = parse_sql(sql)?;
    let select = statement
        .query()
        .ok_or_else(|| DbError::Reoptimization("re-optimization needs a SELECT".into()))?
        .clone();
    match config.mode {
        ReoptMode::Materialize => materialize_loop(db, select, config),
        ReoptMode::InjectOnly => inject_loop(db, select, config),
        ReoptMode::MidQuery => mid_query_loop(db, select, config),
    }
}

/// Whether the SELECT list contains a wildcard. Wildcard queries have no projection
/// node, so their output column order follows the join order — re-planning could
/// silently permute the output. Every mode runs them plain.
fn has_wildcard(select: &SelectStatement) -> bool {
    select
        .items
        .iter()
        .any(|item| matches!(item.expr, SelectExpr::Wildcard))
}

/// Whether re-planning this query can change *which* rows a LIMIT keeps. Detection
/// under a LIMIT is sound (the `exhausted` flags guarantee only true cardinalities
/// are consumed), but the *rewrite* is only result-preserving when the output is
/// plan-order-insensitive: a multi-row output (plain projection, or GROUP BY groups
/// emitted in first-seen order) truncated by a LIMIT would keep a different subset
/// under a different join order. A single-row aggregate — the common benchmark shape
/// — can never be truncated, so those queries stay re-optimizable under LIMIT.
fn reopt_safe_under_limit(select: &SelectStatement) -> bool {
    select.limit.is_none()
        || (select.group_by.is_empty()
            && select
                .items
                .iter()
                .any(|item| matches!(item.expr, SelectExpr::Aggregate { .. })))
}

fn materialize_loop(
    db: &mut Database,
    original: SelectStatement,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let mut current = original;
    let mut rounds: Vec<ReoptRound> = Vec::new();
    let mut planning_time = Duration::ZERO;
    let mut materialization_time = Duration::ZERO;
    let mut detection_time = Duration::ZERO;
    let mut created_sql: Vec<String> = Vec::new();
    let mut temp_counter = 0usize;
    let mut peak_buffered_rows = 0u64;

    // A wildcard select cannot be rewritten around a temp table: the rewrite
    // renames subset columns to their mangled `alias_column` form (and the
    // empty-`needed` fallback projects a placeholder), so `SELECT *` over the
    // rewritten FROM list would change the output schema. Execute such queries
    // once, unrewritten, and report no rounds. Queries with a LIMIT *are*
    // detectable when their output cannot be order-sensitively truncated
    // (`reopt_safe_under_limit`): the per-operator `exhausted` flag filters out
    // joins whose actual_rows were truncated by early termination, so only true
    // cardinalities ever reach the q-error comparison.
    let rewritable = !has_wildcard(&current) && reopt_safe_under_limit(&current);

    loop {
        let output = db.execute_select(&current)?;
        planning_time += output.planning_time;
        peak_buffered_rows = peak_buffered_rows.max(output.peak_buffered_rows);
        let metrics = output.metrics.as_ref().expect("select produces metrics");
        let spec = output.spec.as_ref().expect("select produces a spec");

        let offending = if rewritable {
            metrics
                .root
                .joins_bottom_up()
                .into_iter()
                .find(|join| join.exhausted && join.q_error() > config.threshold)
                .cloned()
        } else {
            None
        };

        let Some(bad_join) = offending else {
            // No join exceeds the threshold: this run is the final SELECT.
            let mut final_sql = created_sql.join("\n");
            if !final_sql.is_empty() {
                final_sql.push('\n');
            }
            final_sql.push_str(&current.to_sql());
            final_sql.push(';');
            let report = ReoptReport {
                rounds,
                final_rows: output.rows,
                planning_time,
                execution_time: materialization_time + output.execution_time,
                detection_time,
                peak_buffered_rows,
                final_sql,
                final_metrics: output.metrics,
            };
            db.drop_temporary_tables();
            return Ok(report);
        };

        if rounds.len() >= config.max_rounds {
            db.drop_temporary_tables();
            return Err(DbError::Reoptimization(format!(
                "exceeded {} re-optimization rounds",
                config.max_rounds
            )));
        }

        detection_time += output.execution_time;
        temp_counter += 1;
        let temp_name = format!("reopt_temp{temp_counter}");
        let subset = bad_join.rel_set;
        let aliases: Vec<String> = subset
            .iter()
            .map(|rel| spec.relations[rel].alias.clone())
            .collect();

        let (temp_query, rewritten) = materialize_subset(spec, &current, subset, &temp_name);
        let create_statement = Statement::CreateTableAs {
            name: temp_name.clone(),
            temporary: true,
            query: temp_query.clone(),
        };
        let create_output = db.create_table_as(&temp_name, true, &temp_query)?;
        materialization_time += create_output.execution_time;
        peak_buffered_rows = peak_buffered_rows.max(create_output.peak_buffered_rows);

        rounds.push(ReoptRound {
            kind: ReoptRoundKind::Restart,
            materialized_aliases: aliases,
            temp_table: Some(temp_name),
            estimated_rows: bad_join.estimated_rows,
            actual_rows: bad_join.actual_rows,
            q_error: bad_join.q_error(),
            create_sql: Some(create_statement.to_sql()),
            materialization_time: create_output.execution_time,
            reused_rows: None,
        });
        created_sql.push(format!("{};", create_statement.to_sql()));
        current = rewritten;
    }
}

fn inject_loop(
    db: &mut Database,
    original: SelectStatement,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let mut injected = CardinalityOverrides::new();
    let mut rounds: Vec<ReoptRound> = Vec::new();
    let mut planning_time = Duration::ZERO;
    let mut detection_time = Duration::ZERO;
    let mut peak_buffered_rows = 0u64;
    // A re-planned wildcard query could permute its output columns (no projection
    // node); run such queries plain. LIMIT queries are detectable via the
    // per-operator `exhausted` flag when their output cannot be order-sensitively
    // truncated, as in `materialize_loop`.
    let detectable = !has_wildcard(&original) && reopt_safe_under_limit(&original);

    loop {
        let (planned, plan_time) = db.plan_select_with_overrides(&original, &injected)?;
        planning_time += plan_time;
        let result = reopt_executor::execute_plan(&planned.plan, db.storage())?;
        peak_buffered_rows = peak_buffered_rows.max(result.peak_buffered_rows);

        let offending = if detectable {
            result
                .metrics
                .root
                .joins_bottom_up()
                .into_iter()
                .find(|join| join.exhausted && join.q_error() > config.threshold)
                .cloned()
        } else {
            None
        };

        let Some(bad_join) = offending else {
            return Ok(ReoptReport {
                rounds,
                final_rows: result.rows,
                planning_time,
                execution_time: result.metrics.execution_time,
                detection_time,
                peak_buffered_rows,
                final_sql: format!("{};", original.to_sql()),
                final_metrics: Some(result.metrics),
            });
        };
        if rounds.len() >= config.max_rounds {
            return Err(DbError::Reoptimization(format!(
                "exceeded {} re-optimization rounds",
                config.max_rounds
            )));
        }
        detection_time += result.metrics.execution_time;
        let aliases: Vec<String> = bad_join
            .rel_set
            .iter()
            .map(|rel| planned.spec.relations[rel].alias.clone())
            .collect();
        injected.set(bad_join.rel_set, bad_join.actual_rows as f64);
        rounds.push(ReoptRound {
            kind: ReoptRoundKind::Restart,
            materialized_aliases: aliases,
            temp_table: None,
            estimated_rows: bad_join.estimated_rows,
            actual_rows: bad_join.actual_rows,
            q_error: bad_join.q_error(),
            create_sql: None,
            materialization_time: Duration::ZERO,
            reused_rows: None,
        });
    }
}

// ---------------------------------------------------------------------------
// Mid-query re-optimization
// ---------------------------------------------------------------------------

/// The policy half of mid-query re-optimization: watches breaker completions, records
/// every observation (they are all true cardinalities), and suspends execution when a
/// *reusable* completed subtree — a hash-build side or nested-loop inner that covers a
/// proper subset of the query's relations — misses its estimate by more than the
/// threshold.
struct MidQueryMonitor {
    threshold: f64,
    all_relations: RelSet,
    events: Vec<BreakerEvent>,
    triggered: Option<BreakerEvent>,
}

impl MidQueryMonitor {
    fn new(threshold: f64, all_relations: RelSet) -> Self {
        Self {
            threshold,
            all_relations,
            events: Vec::new(),
            triggered: None,
        }
    }
}

impl BreakerMonitor for MidQueryMonitor {
    fn on_breaker_complete(&mut self, event: &BreakerEvent) -> BreakerDecision {
        self.events.push(event.clone());
        // Suspending on a subtree that covers the whole query would gain nothing
        // (there is no remaining join order to re-plan), and non-reusable state
        // (merge/aggregate/sort buffers) cannot seed a virtual leaf — those events
        // are still recorded and re-injected as overrides at the next re-plan.
        if self.triggered.is_none()
            && event.reusable
            && !event.rel_set.is_empty()
            && event.rel_set.is_proper_subset_of(self.all_relations)
            && q_error(event.estimated_rows, event.actual_rows as f64) > self.threshold
        {
            self.triggered = Some(event.clone());
            return BreakerDecision::Suspend;
        }
        BreakerDecision::Continue
    }
}

/// Render a bound (possibly collapsed) query back into a SELECT statement for the
/// report's `final_sql`. Virtual tables render under their generated names; the text
/// documents the executed shape, it is not meant to be re-runnable.
fn spec_to_statement(spec: &QuerySpec) -> SelectStatement {
    let mut predicates: Vec<Expr> = Vec::new();
    for rel_predicates in &spec.local_predicates {
        predicates.extend(rel_predicates.iter().cloned());
    }
    for edge in &spec.join_edges {
        predicates.push(edge.to_expr());
    }
    for (_, predicate) in &spec.complex_predicates {
        predicates.push(predicate.clone());
    }
    SelectStatement {
        items: spec.output.clone(),
        from: spec
            .relations
            .iter()
            .map(|relation| {
                if relation.alias.eq_ignore_ascii_case(&relation.table) {
                    TableRef::new(relation.table.clone())
                } else {
                    TableRef::aliased(relation.table.clone(), relation.alias.clone())
                }
            })
            .collect(),
        where_clause: reopt_expr::conjoin(&predicates),
        group_by: spec.group_by.clone(),
        order_by: spec.order_by.clone(),
        limit: spec.limit,
    }
}

/// One pipeline run of the mid-query loop.
enum MidQueryOutcome {
    /// The pipeline ran to completion.
    Completed(Vec<Row>, QueryMetrics),
    /// The monitor suspended the pipeline; the completed breaker states were
    /// extracted, and the partial run's execution time is reported for transparency.
    Suspended(Vec<BreakerState>, Duration),
    /// A real execution error.
    Failed(ExecError),
}

fn mid_query_loop(
    db: &mut Database,
    original: SelectStatement,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let result = mid_query_loop_inner(db, original, config);
    // Virtual tables are session-temporary; never leak them, even on error.
    db.drop_temporary_tables();
    result
}

fn mid_query_loop_inner(
    db: &mut Database,
    original: SelectStatement,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let reoptimizable = !has_wildcard(&original) && reopt_safe_under_limit(&original);

    let mut rounds: Vec<ReoptRound> = Vec::new();
    let mut planning_time = Duration::ZERO;
    let mut materialization_time = Duration::ZERO;
    let mut detection_time = Duration::ZERO;
    let mut peak_buffered_rows = 0u64;
    // Comment lines describing the reused state, prepended to `final_sql`.
    let mut annotations: Vec<String> = Vec::new();
    // Observed true cardinalities, remapped across collapses, re-injected every round.
    let mut carried = CardinalityOverrides::new();
    let mut virt_counter = 0usize;

    let (mut planned, plan_time) = db.plan_select(&original)?;
    planning_time += plan_time;

    loop {
        // Past the round budget the monitor is simply not installed: the final plan
        // runs to completion instead of failing the query (unlike the restart modes,
        // a mid-query round leaves no way to "re-run the original").
        let monitor = (reoptimizable && rounds.len() < config.max_rounds)
            .then(|| Rc::new(RefCell::new(MidQueryMonitor::new(
                config.threshold,
                planned.spec.all_relations(),
            ))));

        let outcome = {
            let executor = Executor::new(db.storage());
            let handle = monitor
                .clone()
                .map(|m| m as Rc<RefCell<dyn BreakerMonitor>>);
            let mut pipeline = executor.open_monitored(&planned.plan, handle)?;
            let mut rows: Vec<Row> = Vec::new();
            let outcome = loop {
                match pipeline.next_batch() {
                    Ok(Some(batch)) => rows.extend(batch),
                    Ok(None) => break MidQueryOutcome::Completed(rows, pipeline.metrics()),
                    Err(ExecError::Suspended) => {
                        break MidQueryOutcome::Suspended(
                            pipeline.take_breaker_states(),
                            pipeline.metrics().execution_time,
                        )
                    }
                    Err(error) => break MidQueryOutcome::Failed(error),
                }
            };
            peak_buffered_rows = peak_buffered_rows.max(pipeline.peak_buffered_rows());
            outcome
        };

        match outcome {
            MidQueryOutcome::Failed(error) => return Err(error.into()),
            MidQueryOutcome::Completed(rows, metrics) => {
                let mut final_sql = annotations.join("\n");
                if !final_sql.is_empty() {
                    final_sql.push('\n');
                }
                let statement = if rounds.is_empty() {
                    original
                } else {
                    spec_to_statement(&planned.spec)
                };
                final_sql.push_str(&statement.to_sql());
                final_sql.push(';');
                return Ok(ReoptReport {
                    rounds,
                    final_rows: rows,
                    planning_time,
                    execution_time: materialization_time + metrics.execution_time,
                    detection_time,
                    peak_buffered_rows,
                    final_sql,
                    final_metrics: Some(metrics),
                });
            }
            MidQueryOutcome::Suspended(states, partial_time) => {
                // The suspended run's work is charged to detection_time for parity
                // with the restart modes, although part of it (the reused breaker
                // build) is *not* discarded — mid-query's true overhead is lower.
                detection_time += partial_time;
                let monitor = monitor.expect("suspension implies a monitor");
                let trigger = monitor
                    .borrow()
                    .triggered
                    .clone()
                    .ok_or_else(|| {
                        DbError::Reoptimization(
                            "pipeline suspended without a trigger event".into(),
                        )
                    })?;
                let subset = trigger.rel_set;
                let state = states
                    .into_iter()
                    .find(|state| state.rel_set == subset)
                    .ok_or_else(|| {
                        DbError::Reoptimization(
                            "suspended breaker state was not extractable".into(),
                        )
                    })?;

                virt_counter += 1;
                let virt_name = format!("reopt_mq{virt_counter}");
                let aliases: Vec<String> = subset
                    .iter()
                    .map(|rel| planned.spec.relations[rel].alias.clone())
                    .collect();
                let reused_rows = state.rows.len() as u64;

                // Register the completed breaker state as a virtual leaf with true
                // statistics. Registration + ANALYZE is the whole materialization
                // cost — the rows were already built by the suspended pipeline.
                let materialize_start = Instant::now();
                db.register_materialized_table(&virt_name, state.schema.clone(), state.rows)?;
                let materialize_elapsed = materialize_start.elapsed();
                materialization_time += materialize_elapsed;

                // Collapse the query around the virtual leaf and re-inject every
                // observation that survives the re-indexing.
                let collapsed =
                    collapse_spec(&planned.spec, subset, &virt_name, &virt_name, state.schema);
                let mut overrides = CardinalityOverrides::new();
                for (set, rows) in carried.iter() {
                    if let Some(mapped) =
                        remap_rel_set(set, subset, &collapsed.mapping, collapsed.virtual_index)
                    {
                        overrides.set(mapped, rows);
                    }
                }
                for event in &monitor.borrow().events {
                    if let Some(mapped) = remap_rel_set(
                        event.rel_set,
                        subset,
                        &collapsed.mapping,
                        collapsed.virtual_index,
                    ) {
                        overrides.set(mapped, event.actual_rows as f64);
                    }
                }
                carried = overrides;

                annotations.push(format!(
                    "-- {virt_name}: reused in-flight {:?} state over [{}] ({reused_rows} rows)",
                    trigger.kind,
                    aliases.join(", "),
                ));

                let (replanned, replan_time) =
                    db.plan_bound_with_overrides(collapsed.spec, &carried)?;
                planning_time += replan_time;
                planned = replanned;

                rounds.push(ReoptRound {
                    kind: ReoptRoundKind::MidQuery,
                    materialized_aliases: aliases,
                    temp_table: Some(virt_name),
                    estimated_rows: trigger.estimated_rows,
                    actual_rows: trigger.actual_rows,
                    q_error: q_error(trigger.estimated_rows, trigger.actual_rows as f64),
                    create_sql: None,
                    materialization_time: materialize_elapsed,
                    reused_rows: Some(reused_rows),
                });
            }
        }
    }
}

/// Split a query around a relation subset: the subset becomes a `CREATE TEMP TABLE`
/// defining query and the remainder is rewritten to reference the temporary table
/// (Figure 6 of the paper).
pub fn materialize_subset(
    spec: &QuerySpec,
    current: &SelectStatement,
    subset: RelSet,
    temp_name: &str,
) -> (SelectStatement, SelectStatement) {
    let in_subset = |reference: &ColumnRef| -> bool {
        reference
            .qualifier
            .as_deref()
            .and_then(|alias| spec.relation_by_alias(alias))
            .map(|rel| subset.contains(rel))
            .unwrap_or(false)
    };

    // Columns of the subset that the remainder of the query still needs: anything
    // referenced by the SELECT list, GROUP BY, ORDER BY, a join edge crossing the
    // boundary, or a complex predicate not fully inside the subset.
    let mut needed: BTreeSet<ColumnRef> = BTreeSet::new();
    let note_refs = |needed: &mut BTreeSet<ColumnRef>, expr: &Expr| {
        let mut refs = Vec::new();
        reopt_expr::collect_column_refs(expr, &mut refs);
        for reference in refs {
            if in_subset(&reference) {
                needed.insert(reference);
            }
        }
    };
    for item in &current.items {
        match &item.expr {
            SelectExpr::Scalar(expr) => note_refs(&mut needed, expr),
            SelectExpr::Aggregate { arg: Some(expr), .. } => note_refs(&mut needed, expr),
            _ => {}
        }
    }
    for expr in &current.group_by {
        note_refs(&mut needed, expr);
    }
    for item in &current.order_by {
        note_refs(&mut needed, &item.expr);
    }
    for edge in &spec.join_edges {
        let inside = subset.contains(edge.left_rel) as usize + subset.contains(edge.right_rel) as usize;
        if inside == 1 {
            if subset.contains(edge.left_rel) {
                needed.insert(edge.left_column.clone());
            } else {
                needed.insert(edge.right_column.clone());
            }
        }
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if !pred_set.is_subset_of(subset) {
            note_refs(&mut needed, predicate);
        }
    }

    // The temp table's defining query: project the needed columns as `alias_column`.
    let temp_items: Vec<SelectItem> = if needed.is_empty() {
        // Nothing from the subset is referenced outside it: the subset is the
        // whole query and the select list is bare `count(*)` (wildcard selects
        // never reach the rewrite, see `materialize_loop`). The temp table must
        // still hold ONE ROW PER JOIN ROW — materializing the aggregate itself
        // would make the rewritten `count(*)` count a single row.
        vec![SelectItem {
            expr: SelectExpr::Scalar(Expr::Literal(reopt_storage::Value::Int(1))),
            alias: Some("materialized_row".into()),
        }]
    } else {
        needed
            .iter()
            .map(|reference| SelectItem {
                expr: SelectExpr::Scalar(Expr::Column(reference.clone())),
                alias: Some(mangled_name(reference)),
            })
            .collect()
    };

    let mut temp_predicates: Vec<Expr> = Vec::new();
    for rel in subset.iter() {
        temp_predicates.extend(spec.local_predicates[rel].iter().cloned());
    }
    for edge in spec.edges_within(subset) {
        temp_predicates.push(edge.to_expr());
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if pred_set.is_subset_of(subset) {
            temp_predicates.push(predicate.clone());
        }
    }
    let temp_query = SelectStatement {
        items: temp_items,
        from: subset
            .iter()
            .map(|rel| {
                let relation = &spec.relations[rel];
                TableRef::aliased(relation.table.clone(), relation.alias.clone())
            })
            .collect(),
        where_clause: reopt_expr::conjoin(&temp_predicates),
        group_by: vec![],
        order_by: vec![],
        limit: None,
    };

    // The rewritten remainder: replace subset relations with the temp table and remap
    // every reference into the subset onto the temp table's mangled column names.
    let remap = |reference: &ColumnRef| -> ColumnRef {
        if in_subset(reference) {
            ColumnRef::qualified(temp_name, mangled_name(reference))
        } else {
            reference.clone()
        }
    };
    let remap_expr = |expr: &Expr| expr.map_column_refs(&remap);

    let rewritten_items: Vec<SelectItem> = current
        .items
        .iter()
        .map(|item| SelectItem {
            expr: match &item.expr {
                SelectExpr::Wildcard => SelectExpr::Wildcard,
                SelectExpr::Scalar(expr) => SelectExpr::Scalar(remap_expr(expr)),
                SelectExpr::Aggregate { func, arg } => SelectExpr::Aggregate {
                    func: *func,
                    arg: arg.as_ref().map(&remap_expr),
                },
            },
            alias: item.alias.clone(),
        })
        .collect();

    let mut rewritten_from: Vec<TableRef> = spec
        .relations
        .iter()
        .filter(|relation| !subset.contains(relation.index))
        .map(|relation| TableRef::aliased(relation.table.clone(), relation.alias.clone()))
        .collect();
    rewritten_from.push(TableRef::new(temp_name));

    let mut rewritten_predicates: Vec<Expr> = Vec::new();
    for relation in &spec.relations {
        if !subset.contains(relation.index) {
            rewritten_predicates.extend(spec.local_predicates[relation.index].iter().cloned());
        }
    }
    for edge in &spec.join_edges {
        let fully_inside = subset.contains(edge.left_rel) && subset.contains(edge.right_rel);
        if !fully_inside {
            rewritten_predicates.push(remap_expr(&edge.to_expr()));
        }
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if !pred_set.is_subset_of(subset) {
            rewritten_predicates.push(remap_expr(predicate));
        }
    }

    let rewritten = SelectStatement {
        items: rewritten_items,
        from: rewritten_from,
        where_clause: reopt_expr::conjoin(&rewritten_predicates),
        group_by: current.group_by.iter().map(&remap_expr).collect(),
        order_by: current
            .order_by
            .iter()
            .map(|item| reopt_sql::OrderByItem {
                expr: remap_expr(&item.expr),
                ascending: item.ascending,
            })
            .collect(),
        limit: current.limit,
    };

    (temp_query, rewritten)
}

/// The column name a subset column gets inside the temporary table (`alias_column`).
fn mangled_name(reference: &ColumnRef) -> String {
    match &reference.qualifier {
        Some(qualifier) => format!("{qualifier}_{}", reference.name),
        None => reference.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::test_database;
    use reopt_planner::bind_select;
    use reopt_storage::Value;

    /// The skewed query: keyword 'kw0' is attached to every movie, so the default
    /// estimator badly underestimates the mk ⋈ k join.
    const SKEWED_SQL: &str = "SELECT min(t.title) AS movie_title, count(*) AS c
        FROM title AS t, movie_keyword AS mk, keyword AS k
        WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
          AND k.keyword = 'kw0' AND t.production_year > 1985";

    #[test]
    fn rewrite_splits_query_like_figure_6() {
        let db = test_database();
        let statement = parse_sql(SKEWED_SQL).unwrap();
        let select = statement.query().unwrap().clone();
        let spec = bind_select(&select, db.storage()).unwrap();
        let mk = spec.relation_by_alias("mk").unwrap();
        let k = spec.relation_by_alias("k").unwrap();
        let subset = RelSet::from_indexes([mk, k]);

        let (temp_query, rewritten) = materialize_subset(&spec, &select, subset, "temp1");
        let temp_sql = temp_query.to_sql();
        let rewritten_sql = rewritten.to_sql();

        // The temp query selects the join column needed by the remainder and applies
        // the keyword filter plus the mk-k join condition.
        assert!(temp_sql.contains("mk.movie_id AS mk_movie_id"));
        assert!(temp_sql.contains("k.keyword = 'kw0'"));
        assert!(temp_sql.contains("movie_keyword AS mk"));
        assert!(!temp_sql.contains("title"));

        // The rewritten query references the temp table and drops the materialized
        // relations.
        assert!(rewritten_sql.contains("temp1"));
        assert!(rewritten_sql.contains("t.id = temp1.mk_movie_id"));
        assert!(!rewritten_sql.contains("movie_keyword"));
        assert!(!rewritten_sql.contains("keyword AS k"));
        assert!(rewritten_sql.contains("t.production_year > 1985"));

        // Both render to parseable SQL.
        assert!(parse_sql(&format!("{temp_sql};")).is_ok());
        assert!(parse_sql(&format!("{rewritten_sql};")).is_ok());
    }

    #[test]
    fn materialize_mode_produces_correct_results() {
        let mut db = test_database();
        // Ground truth from a plain execution.
        let expected = db.execute(SKEWED_SQL).unwrap();

        let config = ReoptConfig {
            threshold: 4.0,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(report.reoptimized(), "expected at least one round");
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.final_sql.contains("CREATE TEMP TABLE reopt_temp1"));
        assert!(report.rounds[0].q_error > 4.0);
        assert!(report.rounds[0].create_sql.is_some());
        assert!(!report.rounds[0].materialized_aliases.is_empty());
        // Temporary tables are cleaned up.
        assert!(!db.storage().contains_table("reopt_temp1"));
        assert!(report.total_time() >= report.execution_time);
    }

    #[test]
    fn high_threshold_never_triggers() {
        let mut db = test_database();
        let config = ReoptConfig::with_threshold(1e9);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(!report.reoptimized());
        assert!(report.final_sql.ends_with(';'));
        assert_eq!(report.detection_time, Duration::ZERO);
        let expected = db.execute(SKEWED_SQL).unwrap();
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn inject_only_mode_matches_results_without_temp_tables() {
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::InjectOnly,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.reoptimized());
        assert!(report.rounds.iter().all(|r| r.temp_table.is_none()));
        assert_eq!(db.storage().table_count(), 3, "no temp tables left behind");
    }

    #[test]
    fn materializing_the_whole_query_keeps_count_semantics() {
        // A two-relation query whose only join IS the whole query: the offending
        // subset covers every relation and the select list is bare count(*), so
        // the temp table must materialize one row per join row, not the count.
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig::with_threshold(4.0);
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(report.reoptimized(), "skewed kw0 join must trigger");
        assert_eq!(report.final_rows, expected.rows);
        assert!(!db.storage().contains_table("reopt_temp1"));
    }

    #[test]
    fn wildcard_selects_execute_unrewritten() {
        // `SELECT *` cannot survive the temp-table rewrite (subset columns get
        // mangled names), so the controller must run it plain even when a join
        // is badly mis-estimated — and the rows must match plain execution.
        let mut db = test_database();
        let sql = "SELECT * FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let report =
            execute_with_reoptimization(&mut db, sql, &ReoptConfig::with_threshold(2.0)).unwrap();
        assert!(!report.reoptimized(), "wildcard queries must not be rewritten");
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.detection_time, Duration::ZERO);
    }

    #[test]
    fn truncated_joins_under_limit_never_trigger() {
        // The LIMIT stops the executor after 5 of the 300 join rows, so the join's
        // actual_rows is a truncated count: the metrics must flag it as not exhausted
        // and detection must ignore it in every mode.
        let mut db = test_database();
        let sql = "SELECT mk.movie_id AS m FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0' LIMIT 5";
        let expected = db.execute(sql).unwrap();
        let metrics = expected.metrics.as_ref().unwrap();
        let truncated_joins: Vec<_> = metrics
            .root
            .joins_bottom_up()
            .into_iter()
            .filter(|join| !join.exhausted)
            .collect();
        assert!(
            !truncated_joins.is_empty(),
            "early termination must leave the join un-exhausted"
        );
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery] {
            let config = ReoptConfig {
                threshold: 1.1,
                mode,
                ..Default::default()
            };
            let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
            assert!(
                !report.reoptimized(),
                "truncated counts must not trigger rewrites ({mode:?})"
            );
            assert_eq!(report.final_rows, expected.rows, "{mode:?} changed the result");
        }
    }

    #[test]
    fn order_sensitive_limits_are_never_rewritten() {
        // The joins below a GROUP BY fully drain (they are exhausted and violate the
        // threshold), but LIMIT over a multi-group output keeps whichever groups the
        // plan emits first — re-planning could keep a *different* subset. Every mode
        // must leave such queries alone.
        let mut db = test_database();
        let sql = "SELECT mk.movie_id AS m, count(*) AS c
                   FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'
                   GROUP BY mk.movie_id LIMIT 5";
        let expected = db.execute(sql).unwrap();
        let metrics = expected.metrics.as_ref().unwrap();
        assert!(
            metrics.root.joins_bottom_up().iter().all(|j| j.exhausted),
            "the aggregate drains the joins even though the limit truncates groups"
        );
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery] {
            let config = ReoptConfig {
                threshold: 1.1,
                mode,
                ..Default::default()
            };
            let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
            assert!(
                !report.reoptimized(),
                "order-sensitive LIMIT output must not be re-optimized ({mode:?})"
            );
            assert_eq!(report.final_rows, expected.rows, "{mode:?} changed the result");
        }
    }

    #[test]
    fn exhausted_joins_under_limit_are_detected() {
        // An aggregate query always produces one row, so LIMIT 5 never terminates
        // early: every operator drains, the joins are exhausted, and re-optimization
        // under LIMIT works again (the ROADMAP's "Re-optimization under LIMIT" item).
        let mut db = test_database();
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk, keyword AS k
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
                     AND k.keyword = 'kw0' AND t.production_year > 1985 LIMIT 5";
        let expected = db.execute(sql).unwrap();
        let metrics = expected.metrics.as_ref().unwrap();
        assert!(
            metrics.root.joins_bottom_up().iter().all(|j| j.exhausted),
            "an aggregate below the limit drains every join"
        );
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly] {
            let config = ReoptConfig {
                threshold: 4.0,
                mode,
                ..Default::default()
            };
            let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
            assert!(
                report.reoptimized(),
                "exhausted counts under LIMIT must be detectable ({mode:?})"
            );
            assert_eq!(report.final_rows, expected.rows, "{mode:?} changed the result");
        }
    }

    /// A database whose plans only use hash joins (and sequential scans), so the
    /// skewed subtree deterministically lands on a hash-join build side — the state
    /// the mid-query controller reuses.
    fn hash_join_only_database() -> Database {
        crate::database::tests::test_database_with_config(reopt_planner::OptimizerConfig {
            enable_index_scans: false,
            enable_index_nl_joins: false,
            enable_merge_joins: false,
            ..Default::default()
        })
    }

    #[test]
    fn mid_query_mode_matches_plain_results_and_reuses_build_state() {
        let mut db = hash_join_only_database();
        let expected = db.execute(SKEWED_SQL).unwrap();

        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.reoptimized(), "the skewed build side must trigger");

        // Every round is a tagged mid-query round that reused breaker state.
        for round in &report.rounds {
            assert_eq!(round.kind, ReoptRoundKind::MidQuery);
            assert!(round.create_sql.is_none(), "no CREATE TEMP TABLE is issued");
            assert!(round.reused_rows.unwrap() > 0, "build state must be reused");
            assert!(round.q_error > 4.0);
        }
        let round = &report.rounds[0];
        let virt_name = round.temp_table.clone().unwrap();
        assert!(virt_name.starts_with("reopt_mq"));

        // Reuse is visible in the final metrics: the virtual table appears as a scan
        // producing exactly the reused rows — the subtree behind it never re-ran.
        let metrics = report.final_metrics.as_ref().expect("final run has metrics");
        let mut reused_scan_rows = None;
        metrics.root.walk(&mut |node| {
            if node.metrics.label.contains(&virt_name) {
                reused_scan_rows = Some(node.metrics.actual_rows);
            }
        });
        assert_eq!(
            reused_scan_rows,
            Some(round.reused_rows.unwrap()),
            "the re-planned query must scan the reused state: {}",
            metrics.root.render()
        );

        // The report documents the reuse and the collapsed final query.
        assert!(report.final_sql.contains(&virt_name), "{}", report.final_sql);
        assert!(report.final_sql.contains("-- reopt_mq1: reused in-flight"));
        // Virtual tables are temporary and cleaned up.
        assert!(!db.storage().contains_table(&virt_name));
        // The discarded work (detection) is accounted separately.
        assert!(report.total_time() >= report.execution_time);
    }

    #[test]
    fn mid_query_report_renders_round_kinds() {
        let mut db = hash_join_only_database();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        let rendered = report.render();
        assert!(rendered.contains("[mid-query]"), "{rendered}");
        assert!(rendered.contains("reused"), "{rendered}");
        assert!(!rendered.contains("[restart]"), "{rendered}");

        let restart = execute_with_reoptimization(
            &mut db,
            SKEWED_SQL,
            &ReoptConfig::with_threshold(4.0),
        )
        .unwrap();
        let rendered = restart.render();
        assert!(rendered.contains("[restart]"), "{rendered}");
        assert!(rendered.contains("materialized as"), "{rendered}");
    }

    #[test]
    fn mid_query_mode_works_under_limit() {
        // Mid-query detection observes breaker completions, which are full drains
        // even under a LIMIT — the mode needs no LIMIT carve-out at all.
        let mut db = hash_join_only_database();
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk, keyword AS k
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
                     AND k.keyword = 'kw0' LIMIT 3";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(report.reoptimized(), "breaker completions are LIMIT-safe");
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn mid_query_high_threshold_never_triggers() {
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let config = ReoptConfig {
            threshold: 1e9,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(!report.reoptimized());
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.detection_time, Duration::ZERO);
        assert!(report.final_sql.ends_with(';'));
    }

    #[test]
    fn mid_query_wildcards_execute_plain() {
        let mut db = hash_join_only_database();
        let sql = "SELECT * FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig {
            threshold: 2.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(!report.reoptimized(), "wildcard queries must run unmodified");
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn non_select_statements_are_rejected() {
        let mut db = test_database();
        // A parse failure surfaces as a parse error, not a panic.
        let err = execute_with_reoptimization(&mut db, "NOT SQL", &ReoptConfig::default());
        assert!(err.is_err());
    }

    /// The worst join Q-error observed when executing `sql` with the default
    /// estimator — the quantity the controller compares against its threshold.
    fn worst_join_q_error(db: &mut Database, sql: &str) -> f64 {
        let output = db.execute(sql).unwrap();
        output
            .metrics
            .as_ref()
            .unwrap()
            .root
            .joins_bottom_up()
            .iter()
            .map(|j| j.q_error())
            .fold(1.0f64, f64::max)
    }

    #[test]
    fn threshold_just_below_worst_q_error_triggers_replanning() {
        let mut db = test_database();
        let worst = worst_join_q_error(&mut db, SKEWED_SQL);
        assert!(worst > 1.0, "the skewed query must show estimation error");

        let config = ReoptConfig::with_threshold(worst * 0.99);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            report.reoptimized(),
            "threshold {} below worst q-error {worst} must trigger",
            worst * 0.99
        );
        assert!(report.rounds[0].q_error > config.threshold);
    }

    #[test]
    fn threshold_just_above_worst_q_error_skips_replanning() {
        let mut db = test_database();
        let worst = worst_join_q_error(&mut db, SKEWED_SQL);

        let config = ReoptConfig::with_threshold(worst * 1.01);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            !report.reoptimized(),
            "threshold {} above worst q-error {worst} must not trigger",
            worst * 1.01
        );
        // A skipped controller charges no detection time and leaves no rounds.
        assert!(report.rounds.is_empty());
        assert_eq!(report.detection_time, Duration::ZERO);
    }

    #[test]
    fn reoptimized_count_matches_plain_execution_on_unskewed_query() {
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM title AS t, movie_keyword AS mk
                   WHERE t.id = mk.movie_id AND t.production_year > 2010";
        let expected = db.execute(sql).unwrap();
        let report =
            execute_with_reoptimization(&mut db, sql, &ReoptConfig::with_threshold(2.0)).unwrap();
        assert_eq!(report.final_rows[0].value(0), expected.rows[0].value(0));
        assert_eq!(
            report.final_rows[0].value(0).as_int().unwrap(),
            expected.rows[0].value(0).as_int().unwrap()
        );
        assert_ne!(expected.rows[0].value(0), &Value::Int(0));
    }
}
