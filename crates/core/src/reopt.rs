//! The re-optimization driver (Section V of the paper, generalized).
//!
//! The paper simulates a simple mid-query re-optimization scheme:
//!
//! 1. Run the query with EXPLAIN ANALYZE and compare, for every join operator, the true
//!    output cardinality with the optimizer's estimate.
//! 2. Take the **lowest** join whose Q-error exceeds a threshold (32 in the paper's
//!    chosen configuration) and rewrite that sub-join as `CREATE TEMP TABLE … AS SELECT`.
//! 3. Replace the materialized relations in the remainder of the query with the
//!    temporary table and re-plan.
//! 4. Repeat until no join operator exceeds the threshold.
//!
//! That scheme — and every variant this crate studies — is one instance of the same
//! control loop: *observe* cardinality truth, *decide*, *re-plan*. This module is the
//! mechanism half of that loop: [`execute_with_policy`] is a single driver that plans,
//! executes (forwarding the executor's [`ExecEvent`] stream to the policy), and applies
//! whatever a [`ReoptPolicy`] decides:
//!
//! * [`PolicyDecision::Restart`] with `materialize: true` — split the violating subset
//!   off as a temporary table ([`materialize_subset`], Figure 6 of the paper), rewrite
//!   the remainder around it and start over.
//! * [`PolicyDecision::Restart`] with `materialize: false` — inject the observed
//!   cardinalities into the estimator and re-plan the same query.
//! * [`PolicyDecision::ReplanMidQuery`] — suspend the running pipeline where the
//!   violation surfaced; when the trigger is a *reusable* completed breaker (hash-build
//!   side or nested-loop inner) its rows are registered as a virtual leaf table with
//!   true statistics, the query is collapsed around it
//!   ([`reopt_planner::collapse_spec`]) and only the remainder is re-planned — the
//!   already-built state is never re-executed. When the trigger is a streaming
//!   [`Progress`](crate::policy::ReoptTrigger::Progress) observation (e.g. an index-NL
//!   pipeline overshooting its estimate, where no breaker state exists), the observed
//!   bound plus every exact observation from the aborted run is injected and the
//!   remainder re-planned from scratch — catching the mis-estimate after a few cheap
//!   batches instead of a full detection run.
//!
//! The paper's three modes survive as [`ReoptMode`], a thin constructor over the
//! built-in policies ([`ReoptConfig::policy`]); the selective-improvement simulation
//! drives the same loop through [`SelectivePolicy`](crate::SelectivePolicy).
//!
//! The reported *planning time* is the planning time of the original query plus every
//! re-planning round; the reported *execution time* is every materialization plus the
//! final run; work that was executed and then abandoned (full detection runs for the
//! restart policies, the partial run up to a suspension for mid-query rounds) is
//! surfaced separately as detection time. Detection only ever consumes **exhausted**
//! operator counts ([`OperatorMetrics::exhausted`](reopt_executor::OperatorMetrics)):
//! operators truncated by early termination under a LIMIT report partial `actual_rows`,
//! which must never be mistaken for true cardinalities. The *rewrite* additionally
//! requires the output to be plan-order-insensitive (single-row aggregates — see
//! `reopt_safe_under_limit`), because a multi-row output truncated by a LIMIT could
//! keep a different subset under a different join order. Wildcard selects re-plan
//! safely across restarts (the optimizer pins their output projection to FROM order,
//! so a different join order no longer permutes their columns), but materialize
//! restarts degrade to injection for them (the temp table's mangled column names
//! would leak into the expansion) and mid-query collapses stay carved out entirely
//! (a virtual leaf's schema would replace the expanded base-relation columns).
//!
//! Every run also feeds the catalog's cross-query
//! [`FeedbackCache`](reopt_catalog::FeedbackCache): observed true cardinalities — exhausted
//! operators, completed breakers, progress lower bounds — are recorded under
//! normalized *(relation set, predicate signature)* keys in the **original** query's
//! indexing, and the next query over the same tables and predicates seeds its first
//! planning pass from them ([`reopt_planner::seed_overrides_from_cache`]). Feedback
//! defaults on and is controlled per-run by [`ReoptConfig::with_feedback`] /
//! [`execute_with_policy_feedback`] and globally by the `REOPT_FEEDBACK` environment
//! variable (`0` disables).

use crate::database::Database;
use crate::error::DbError;
use crate::policy::{PolicyContext, PolicyDecision, ReoptPolicy, ReoptTrigger, Violation};
use crate::qerror::DEFAULT_REOPT_THRESHOLD;
use reopt_executor::{
    BreakerState, ExecError, ExecEvent, ExecutionObserver, Executor, ObserverDecision,
    ObserverHandle, QueryMetrics,
};
use reopt_expr::{ColumnRef, Expr};
use reopt_planner::{
    bind_select, collapse_spec, feedback_key, seed_overrides_from_cache, CardinalityOverrides,
    Exactness, PlannedQuery, QuerySpec, RelSet,
};
use reopt_sql::{parse_sql, SelectExpr, SelectItem, SelectStatement, Statement, TableRef};
use reopt_storage::Row;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The paper's three re-optimization schemes, kept as a thin constructor over the
/// policy API ([`ReoptConfig::policy`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptMode {
    /// Materialize the mis-estimated sub-join into a temporary table and rewrite the
    /// remainder of the query around it (the paper's simulation;
    /// [`RestartPolicy`](crate::RestartPolicy) with `materialize: true`).
    Materialize,
    /// Only inject the observed cardinality into the estimator and re-plan the original
    /// query (no materialization cost; an optimistic lower bound;
    /// [`RestartPolicy`](crate::RestartPolicy) with `materialize: false`).
    InjectOnly,
    /// Suspend the running pipeline where the mis-estimate surfaced — a completed
    /// breaker or a streaming progress report — reuse completed breaker state as a
    /// virtual leaf table where possible, and re-plan only the remaining join order
    /// ([`MidQueryPolicy`](crate::MidQueryPolicy)).
    MidQuery,
}

/// Whether a round restarted the query or re-planned it mid-flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptRoundKind {
    /// The round came from a restart decision: the current execution was abandoned
    /// (usually after running to completion as a detection run) and the query
    /// restarted with what was learned.
    Restart,
    /// The round suspended a running pipeline mid-flight and resumed on a re-planned
    /// remainder.
    MidQuery,
}

impl std::fmt::Display for ReoptRoundKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReoptRoundKind::Restart => write!(f, "restart"),
            ReoptRoundKind::MidQuery => write!(f, "mid-query"),
        }
    }
}

/// Re-optimization configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ReoptConfig {
    /// Q-error threshold that triggers re-optimization (the paper uses 32).
    pub threshold: f64,
    /// Maximum number of re-optimization rounds; past the budget the current plan
    /// runs to completion.
    pub max_rounds: usize,
    /// Which built-in policy to run.
    pub mode: ReoptMode,
    /// Whether the run consults and feeds the catalog's cross-query cardinality
    /// feedback cache. Defaults to [`feedback_enabled_by_default`] (the
    /// `REOPT_FEEDBACK` environment variable; on unless set to `0`).
    pub feedback: bool,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        Self {
            threshold: DEFAULT_REOPT_THRESHOLD,
            max_rounds: 16,
            mode: ReoptMode::Materialize,
            feedback: feedback_enabled_by_default(),
        }
    }
}

/// Whether cross-query cardinality feedback is enabled by default: the
/// `REOPT_FEEDBACK` environment variable, treated as on unless set to `0`.
pub fn feedback_enabled_by_default() -> bool {
    std::env::var("REOPT_FEEDBACK")
        .map(|value| value != "0")
        .unwrap_or(true)
}

impl ReoptConfig {
    /// A configuration with a specific threshold (used by the Figure-7 sweep).
    ///
    /// # Examples
    ///
    /// ```
    /// use reopt_core::{ReoptConfig, ReoptMode};
    ///
    /// // The paper's configuration: materialize-and-replan at q-error 32.
    /// let config = ReoptConfig::default();
    /// assert_eq!(config.threshold, 32.0);
    /// assert_eq!(config.mode, ReoptMode::Materialize);
    ///
    /// // A mid-query configuration with a custom trigger threshold.
    /// let config = ReoptConfig {
    ///     mode: ReoptMode::MidQuery,
    ///     ..ReoptConfig::with_threshold(8.0)
    /// };
    /// assert_eq!(config.threshold, 8.0);
    /// ```
    pub fn with_threshold(threshold: f64) -> Self {
        Self {
            threshold,
            ..Self::default()
        }
    }

    /// The same configuration with cross-query cardinality feedback forced on or off,
    /// overriding the `REOPT_FEEDBACK` environment default. Tests that assert exact
    /// round counts across several runs on one database pin this off; benchmark
    /// second-pass runs pin it on.
    pub fn with_feedback(mut self, feedback: bool) -> Self {
        self.feedback = feedback;
        self
    }

    /// The built-in [`ReoptPolicy`] this configuration stands for. `ReoptMode` is the
    /// backward-compatible constructor; new callers can implement the trait directly
    /// and pass it to [`execute_with_policy`].
    pub fn policy(&self) -> Box<dyn ReoptPolicy> {
        match self.mode {
            ReoptMode::Materialize => Box::new(crate::policy::RestartPolicy {
                threshold: self.threshold,
                materialize: true,
                max_rounds: self.max_rounds,
            }),
            ReoptMode::InjectOnly => Box::new(crate::policy::RestartPolicy {
                threshold: self.threshold,
                materialize: false,
                max_rounds: self.max_rounds,
            }),
            ReoptMode::MidQuery => Box::new(crate::policy::MidQueryPolicy {
                threshold: self.threshold,
                max_rounds: self.max_rounds,
            }),
        }
    }
}

/// One re-optimization round.
#[derive(Debug, Clone)]
pub struct ReoptRound {
    /// Whether this round restarted the query or re-planned it mid-flight.
    pub kind: ReoptRoundKind,
    /// Which event kind triggered the round: a completed detection run, a breaker
    /// completion, or a streaming progress report.
    pub trigger: ReoptTrigger,
    /// The violating relation subset, in the indexing of the plan that was running
    /// when the round triggered.
    pub rel_set: RelSet,
    /// The aliases of the relations that were materialized (or whose cardinality was
    /// injected).
    pub materialized_aliases: Vec<String>,
    /// The temporary table name (materialize restarts and state-reusing mid-query
    /// rounds).
    pub temp_table: Option<String>,
    /// The optimizer's estimate for the offending subset.
    pub estimated_rows: f64,
    /// The observed cardinality (a lower bound for progress-triggered rounds).
    pub actual_rows: u64,
    /// The Q-error that triggered this round.
    pub q_error: f64,
    /// The `CREATE TEMP TABLE` statement issued (materialize restarts only), as SQL.
    pub create_sql: Option<String>,
    /// Execution time of the materialization. For mid-query rounds this is only the
    /// cost of registering and analyzing the already-built breaker state.
    pub materialization_time: Duration,
    /// Rows of completed breaker state carried into the re-planned remainder instead
    /// of being re-executed (mid-query rounds only).
    pub reused_rows: Option<u64>,
    /// Planning time of the run that raised this round's trigger.
    pub planning_time: Duration,
    /// Executed-then-abandoned work of this round: a full detection run for restart
    /// rounds, the partial run up to the suspension for mid-query rounds (whose
    /// dominant component — any reused breaker build — is *not* actually discarded).
    pub detection_time: Duration,
    /// Number of cardinalities injected into the estimator by this round.
    pub corrections: usize,
}

/// The outcome of running a query under a re-optimization policy.
#[derive(Debug, Clone)]
pub struct ReoptReport {
    /// The name of the policy that drove the run ([`ReoptPolicy::name`]).
    pub policy: String,
    /// The executor worker-pool size every run (detection, materialization and final)
    /// used. `1` means the single-threaded engine; larger counts select the
    /// morsel-driven parallel engine for every plan it supports.
    pub threads: usize,
    /// The rounds that were triggered (empty when the first plan was good enough).
    pub rounds: Vec<ReoptRound>,
    /// The rows of the final query.
    pub final_rows: Vec<Row>,
    /// Planning time: original query + every re-planning round.
    pub planning_time: Duration,
    /// Execution time: every materialization + the final run.
    pub execution_time: Duration,
    /// Execution time spent in runs that were abandoned after triggering a round (not
    /// part of the paper's reported numbers; kept for transparency).
    pub detection_time: Duration,
    /// Largest peak of pipeline-breaker buffered rows across every executed statement
    /// (detection runs, materializations and the final run).
    pub peak_buffered_rows: u64,
    /// Largest peak of pipeline-breaker buffered bytes across the same statements
    /// (the byte-weighted companion of [`ReoptReport::peak_buffered_rows`]).
    pub peak_buffered_bytes: u64,
    /// Total bytes written to spill files across every executed statement
    /// (detection runs, materializations and the final run). `0` unless a finite
    /// memory budget forced some breaker out of core.
    pub spilled_bytes: u64,
    /// Total spill partitions / runs written across the same statements.
    pub spill_partitions: u64,
    /// The final re-optimized script (CREATE TEMP TABLE statements + final SELECT; for
    /// mid-query rounds, comment lines describing the reused breaker state + the
    /// collapsed final SELECT over the virtual tables).
    pub final_sql: String,
    /// The metrics tree of the final execution, when one ran to completion. Lets
    /// callers verify plan shape and state reuse (a mid-query round's virtual table
    /// appears as a scan whose `actual_rows` equals the reused row count).
    pub final_metrics: Option<QueryMetrics>,
}

impl ReoptReport {
    /// Whether any re-optimization round was triggered.
    pub fn reoptimized(&self) -> bool {
        !self.rounds.is_empty()
    }

    /// Planning + execution time (the end-to-end latency the paper's Figure 1 reports).
    pub fn total_time(&self) -> Duration {
        self.planning_time + self.execution_time
    }
}

/// Run a query under one of the paper's re-optimization modes. Equivalent to
/// [`execute_with_policy`] with the mode's built-in policy ([`ReoptConfig::policy`]).
pub fn execute_with_reoptimization(
    db: &mut Database,
    sql: &str,
    config: &ReoptConfig,
) -> Result<ReoptReport, DbError> {
    let mut policy = config.policy();
    execute_with_policy_feedback(db, sql, policy.as_mut(), config.feedback)
}

/// Run a query under an arbitrary [`ReoptPolicy`]: the unified driver behind every
/// re-optimization scheme in this crate. See the [module documentation](self) for the
/// decision semantics and [`crate::policy`] for the built-in policies. Cross-query
/// cardinality feedback follows the `REOPT_FEEDBACK` environment default; use
/// [`execute_with_policy_feedback`] to pin it per-run.
pub fn execute_with_policy(
    db: &mut Database,
    sql: &str,
    policy: &mut dyn ReoptPolicy,
) -> Result<ReoptReport, DbError> {
    execute_with_policy_feedback(db, sql, policy, feedback_enabled_by_default())
}

/// [`execute_with_policy`] with cross-query cardinality feedback explicitly on or
/// off for this run (seeding the first planning pass from the catalog's
/// `FeedbackCache` and recording every observed cardinality back into it).
pub fn execute_with_policy_feedback(
    db: &mut Database,
    sql: &str,
    policy: &mut dyn ReoptPolicy,
    feedback: bool,
) -> Result<ReoptReport, DbError> {
    let statement = parse_sql(sql)?;
    let select = statement
        .query()
        .ok_or_else(|| DbError::Reoptimization("re-optimization needs a SELECT".into()))?
        .clone();
    let mut driver = Driver::new(select, feedback);
    let result = driver.run(db, policy);
    // Never leak the driver's temp/virtual tables, even on error — but drop only the
    // tables *this* run created: a user's own session temp tables must survive a
    // policy that never materializes anything.
    db.drop_tables(&driver.created_tables);
    result
}

/// Whether the SELECT list contains a wildcard. The optimizer pins a wildcard's
/// output projection to FROM order, so restart-style re-planning is safe; but the
/// temp-table rewrite (mangled column names) and the mid-query collapse (a virtual
/// leaf's schema replaces the expanded base columns) would still change the expanded
/// column set, so the driver degrades materialize restarts to injection and never
/// observes events (no mid-query rounds) for wildcard queries.
fn has_wildcard(select: &SelectStatement) -> bool {
    select
        .items
        .iter()
        .any(|item| matches!(item.expr, SelectExpr::Wildcard))
}

/// Whether re-planning this query can change *which* rows a LIMIT keeps. Detection
/// under a LIMIT is sound (the `exhausted` flags guarantee only true cardinalities
/// are consumed), but the *rewrite* is only result-preserving when the output is
/// plan-order-insensitive: a multi-row output (plain projection, or GROUP BY groups
/// emitted in first-seen order) truncated by a LIMIT would keep a different subset
/// under a different join order. A single-row aggregate — the common benchmark shape
/// — can never be truncated, so those queries stay re-optimizable under LIMIT.
fn reopt_safe_under_limit(select: &SelectStatement) -> bool {
    select.limit.is_none()
        || (select.group_by.is_empty()
            && select
                .items
                .iter()
                .any(|item| matches!(item.expr, SelectExpr::Aggregate { .. })))
}

// ---------------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------------

/// Forwards executor events to the policy and captures the first non-`Continue`
/// decision, which suspends the pipeline immediately.
struct PolicyObserver<'a> {
    policy: &'a mut dyn ReoptPolicy,
    ctx: PolicyContext,
    decision: Option<PolicyDecision>,
}

impl ExecutionObserver for PolicyObserver<'_> {
    fn on_event(&mut self, event: &ExecEvent) -> ObserverDecision {
        if self.decision.is_some() {
            return ObserverDecision::Continue;
        }
        match self.policy.on_event(event, &self.ctx) {
            PolicyDecision::Continue => ObserverDecision::Continue,
            decision => {
                self.decision = Some(decision);
                ObserverDecision::Suspend
            }
        }
    }
}

/// How one pipeline run ended.
enum RunOutcome {
    /// The pipeline ran to completion.
    Completed(Vec<Row>, QueryMetrics),
    /// The policy suspended the pipeline; the completed breaker states were extracted
    /// and the partial run's metrics tree retained — every count in it is either a
    /// true cardinality (exhausted subtree) or a lower bound worth injecting.
    Suspended(Vec<BreakerState>, QueryMetrics),
}

/// One pipeline run plus the decision the policy took during it, if any.
struct RunResult {
    outcome: RunOutcome,
    decision: Option<PolicyDecision>,
    peak_buffered_rows: u64,
    peak_buffered_bytes: u64,
}

/// Every cardinality observation in a (possibly partial) metrics tree, shallowest
/// node first: exact counts for operators whose whole subtree ran to completion, and
/// produced-rows lower bounds where an unfinished operator already overshot its
/// estimate (truth >= produced > estimate, so the bound is strictly closer to the
/// truth). Only joins and leaf scans are harvested — their output is the filtered
/// cardinality of their relation set, which is exactly what a
/// [`CardinalityOverrides`] entry means; aggregates/sorts/projections share a rel_set
/// with different row semantics. Each observation is tagged: an exhausted subtree's
/// count is [`Exactness::Exact`]; an unfinished operator that merely overshot its
/// estimate has only produced a lower bound ([`Exactness::AtLeast`]).
fn harvest_observations(metrics: &QueryMetrics) -> Vec<(RelSet, f64, Exactness)> {
    let mut out = Vec::new();
    metrics.root.walk(&mut |node| {
        let m = &node.metrics;
        if m.rel_set.is_empty() || !(m.is_join || node.children.is_empty()) {
            return;
        }
        if m.exhausted {
            out.push((m.rel_set, m.actual_rows as f64, Exactness::Exact));
        } else if (m.actual_rows as f64) > m.estimated_rows {
            out.push((m.rel_set, m.actual_rows as f64, Exactness::AtLeast));
        }
    });
    out
}

/// The exactness of a violation's observed count: a completed detection run or
/// breaker completion saw the true cardinality; a streaming progress report or a
/// memory-pressure denial (rows buffered so far) has only a lower bound.
fn violation_exactness(trigger: ReoptTrigger) -> Exactness {
    match trigger {
        ReoptTrigger::Progress | ReoptTrigger::MemoryPressure => Exactness::AtLeast,
        _ => Exactness::Exact,
    }
}

/// The mutable state of one [`execute_with_policy`] call.
struct Driver {
    original: SelectStatement,
    /// The statement form of the current query (rewritten by materialize restarts).
    current: SelectStatement,
    /// The bound form after a mid-query collapse (takes precedence over `current`).
    collapsed: Option<QuerySpec>,
    /// Whether this run consults and feeds the catalog's cross-query feedback cache.
    feedback: bool,
    /// Whether the SELECT list contains a wildcard (see [`has_wildcard`]).
    wildcard: bool,
    /// The original query in bound form — the indexing every feedback-cache key uses.
    original_spec: Option<QuerySpec>,
    /// Per-relation mapping from the *current* query's indexing back to the original
    /// query's: identity at first, composed across every materialize rewrite (the
    /// temp relation expands to the subset it materialized) and mid-query collapse
    /// (the virtual leaf likewise). `None` marks a relation with no original-space
    /// image; observations touching it are never recorded — a driver-created leaf
    /// must not outlive its table in the cache.
    to_original: Vec<Option<RelSet>>,
    /// Corrections and carried observations, keyed in the current query's indexing.
    injected: CardinalityOverrides,
    rounds: Vec<ReoptRound>,
    planning_time: Duration,
    materialization_time: Duration,
    detection_time: Duration,
    peak_buffered_rows: u64,
    peak_buffered_bytes: u64,
    spilled_bytes: u64,
    spill_partitions: u64,
    /// `CREATE TEMP TABLE` script lines (materialize restarts).
    created_sql: Vec<String>,
    /// Comment lines describing reused breaker state (mid-query rounds).
    annotations: Vec<String>,
    /// Every temp/virtual table this run registered, dropped on the way out.
    created_tables: Vec<String>,
    temp_counter: usize,
    virt_counter: usize,
}

impl Driver {
    fn new(original: SelectStatement, feedback: bool) -> Self {
        let wildcard = has_wildcard(&original);
        Self {
            current: original.clone(),
            original,
            collapsed: None,
            feedback,
            wildcard,
            original_spec: None,
            to_original: Vec::new(),
            injected: CardinalityOverrides::new(),
            rounds: Vec::new(),
            planning_time: Duration::ZERO,
            materialization_time: Duration::ZERO,
            detection_time: Duration::ZERO,
            peak_buffered_rows: 0,
            peak_buffered_bytes: 0,
            spilled_bytes: 0,
            spill_partitions: 0,
            created_sql: Vec::new(),
            annotations: Vec::new(),
            created_tables: Vec::new(),
            temp_counter: 0,
            virt_counter: 0,
        }
    }

    fn run(
        &mut self,
        db: &mut Database,
        policy: &mut dyn ReoptPolicy,
    ) -> Result<ReoptReport, DbError> {
        // LIMIT safety gate shared by every policy (see `reopt_safe_under_limit`);
        // unsafe queries execute plain, with no observer and no rounds. Wildcard
        // queries re-plan across restarts but never observe events (no mid-query
        // collapse; see `has_wildcard`).
        let limit_safe = reopt_safe_under_limit(&self.original);

        // Bind the original once: its indexing is the coordinate system of every
        // feedback-cache key this run reads or writes.
        let original_spec = bind_select(&self.original, db.storage())?;
        self.to_original = (0..original_spec.relation_count())
            .map(|rel| Some(RelSet::single(rel)))
            .collect();
        if self.feedback && limit_safe {
            // Seed the first planning pass from the cache. Queries whose LIMIT makes
            // re-planning order-sensitive plan unseeded: a seeded first plan could
            // keep a different row subset than the same query planned cold.
            let seeds = seed_overrides_from_cache(&original_spec, db.catalog().feedback());
            self.injected.merge(&seeds);
        }
        self.original_spec = Some(original_spec);

        loop {
            let (planned, plan_time) = match &self.collapsed {
                Some(spec) => db.plan_bound_with_overrides(spec.clone(), &self.injected)?,
                None => db.plan_select_with_overrides(&self.current, &self.injected)?,
            };
            self.planning_time += plan_time;

            // Past the round budget the policy is simply not consulted: the final
            // plan runs to completion instead of failing the query (a mid-query
            // round leaves no way to "re-run the original" anyway).
            let budget_open = limit_safe && self.rounds.len() < policy.max_rounds();
            let ctx = PolicyContext {
                all_relations: planned.spec.all_relations(),
                rounds: self.rounds.len(),
            };
            let observe = budget_open && !self.wildcard && policy.wants_events();
            let run = run_pipeline(db, &planned, policy, ctx.clone(), observe)?;
            self.peak_buffered_rows = self.peak_buffered_rows.max(run.peak_buffered_rows);
            self.peak_buffered_bytes = self.peak_buffered_bytes.max(run.peak_buffered_bytes);
            {
                let (RunOutcome::Completed(_, metrics) | RunOutcome::Suspended(_, metrics)) =
                    &run.outcome;
                let (bytes, partitions) = metrics.root.total_spilled();
                self.spilled_bytes += bytes;
                self.spill_partitions += partitions;
            }

            match run.outcome {
                RunOutcome::Completed(rows, metrics) => {
                    // Harvest into the cross-query cache before anything remaps the
                    // indexing: a completed run's exhausted counts are truths worth
                    // keeping whether or not the policy restarts.
                    self.record_feedback(db, &harvest_observations(&metrics));
                    let decision = if budget_open {
                        policy.on_complete(&metrics, &planned.spec, &ctx)
                    } else {
                        PolicyDecision::Continue
                    };
                    match decision {
                        PolicyDecision::Continue => {
                            return Ok(self.finalize(
                                policy.name(),
                                db.threads(),
                                &planned,
                                rows,
                                metrics,
                            ));
                        }
                        PolicyDecision::ReplanMidQuery { .. } => {
                            return Err(DbError::Reoptimization(
                                "ReplanMidQuery is only valid from on_event — a completed \
                                 run has nothing left to suspend"
                                    .into(),
                            ));
                        }
                        PolicyDecision::Restart {
                            materialize,
                            violation,
                            corrections,
                        } => {
                            self.detection_time += metrics.execution_time;
                            self.apply_restart(
                                db,
                                &planned,
                                plan_time,
                                metrics.execution_time,
                                materialize,
                                violation,
                                &corrections,
                            )?;
                        }
                    }
                }
                RunOutcome::Suspended(states, partial_metrics) => {
                    let partial_time = partial_metrics.execution_time;
                    self.detection_time += partial_time;
                    let mut observed = harvest_observations(&partial_metrics);
                    if let Some(
                        PolicyDecision::Restart { violation, .. }
                        | PolicyDecision::ReplanMidQuery { violation },
                    ) = &run.decision
                    {
                        // The violation can exceed the metrics-tree count for the
                        // same subset (it includes the in-flight batch the
                        // suspension discarded); the cache's merge rules keep
                        // whichever observation says more.
                        if !violation.rel_set.is_empty() {
                            observed.push((
                                violation.rel_set,
                                violation.actual_rows as f64,
                                violation_exactness(violation.trigger),
                            ));
                        }
                    }
                    self.record_feedback(db, &observed);
                    let decision = run.decision.ok_or_else(|| {
                        DbError::Reoptimization(
                            "pipeline suspended without a policy decision".into(),
                        )
                    })?;
                    match decision {
                        PolicyDecision::Continue => {
                            return Err(DbError::Reoptimization(
                                "pipeline suspended on a Continue decision".into(),
                            ));
                        }
                        PolicyDecision::Restart {
                            materialize,
                            violation,
                            corrections,
                        } => {
                            // An event-triggered restart: the abandoned partial run
                            // is the whole detection cost.
                            self.apply_restart(
                                db,
                                &planned,
                                plan_time,
                                partial_time,
                                materialize,
                                violation,
                                &corrections,
                            )?;
                        }
                        PolicyDecision::ReplanMidQuery { violation } => {
                            self.apply_mid_query(
                                db,
                                &planned,
                                plan_time,
                                violation,
                                &partial_metrics,
                                states,
                            )?;
                        }
                    }
                }
            }
        }
    }

    /// Apply a [`PolicyDecision::Restart`]: materialize the violating subset as a
    /// temporary table (rewriting the statement around it) or inject the policy's
    /// corrections, then loop.
    #[allow(clippy::too_many_arguments)]
    fn apply_restart(
        &mut self,
        db: &mut Database,
        planned: &PlannedQuery,
        plan_time: Duration,
        detection: Duration,
        materialize: bool,
        violation: Violation,
        corrections: &[crate::policy::Correction],
    ) -> Result<(), DbError> {
        // A wildcard SELECT survives re-planning (its projection is pinned to FROM
        // order) but not the temp-table rewrite, whose mangled column names would
        // leak into the expansion: degrade to an inject-only round carrying the
        // violation's observed count.
        let degraded = materialize && self.wildcard;
        let materialize = materialize && !degraded;
        let mut round = ReoptRound {
            kind: ReoptRoundKind::Restart,
            trigger: violation.trigger,
            rel_set: violation.rel_set,
            materialized_aliases: aliases_of(&planned.spec, violation.rel_set),
            temp_table: None,
            estimated_rows: violation.estimated_rows,
            actual_rows: violation.actual_rows,
            q_error: violation.q_error(),
            create_sql: None,
            materialization_time: Duration::ZERO,
            reused_rows: None,
            planning_time: plan_time,
            detection_time: detection,
            corrections: 0,
        };
        if materialize {
            // A materialize restart rewrites the SQL statement; once a mid-query
            // round collapsed the query into a bound spec there is no statement left
            // to rewrite. The built-in policies never mix the two.
            if self.collapsed.is_some() {
                return Err(DbError::Reoptimization(
                    "cannot materialize-restart after a mid-query re-plan collapsed the query"
                        .into(),
                ));
            }
            self.temp_counter += 1;
            let temp_name = format!("reopt_temp{}", self.temp_counter);
            let (temp_query, rewritten) =
                materialize_subset(&planned.spec, &self.current, violation.rel_set, &temp_name);
            let create_output = db.create_table_as(&temp_name, true, &temp_query)?;
            self.materialization_time += create_output.execution_time;
            self.peak_buffered_rows =
                self.peak_buffered_rows.max(create_output.peak_buffered_rows);
            self.peak_buffered_bytes = self
                .peak_buffered_bytes
                .max(create_output.peak_buffered_bytes);
            if let Some(metrics) = &create_output.metrics {
                let (bytes, partitions) = metrics.root.total_spilled();
                self.spilled_bytes += bytes;
                self.spill_partitions += partitions;
            }
            let create_statement = Statement::CreateTableAs {
                name: temp_name.clone(),
                temporary: true,
                query: temp_query,
            };
            round.materialization_time = create_output.execution_time;
            round.create_sql = Some(create_statement.to_sql());
            self.created_tables.push(temp_name.clone());
            round.temp_table = Some(temp_name);
            self.created_sql.push(format!("{};", create_statement.to_sql()));
            // The rewrite re-numbers the relations (the temp table replaces the
            // subset and lands at the end of the FROM list, which is how the binder
            // will re-index them): carried overrides from earlier inject rounds must
            // be remapped or they would silently pin the wrong relations.
            let mut mapping: Vec<Option<usize>> = Vec::with_capacity(planned.spec.relation_count());
            let mut next = 0usize;
            for rel in 0..planned.spec.relation_count() {
                if violation.rel_set.contains(rel) {
                    mapping.push(None);
                } else {
                    mapping.push(Some(next));
                    next += 1;
                }
            }
            let mut remapped = CardinalityOverrides::new();
            for (set, observed, exactness) in self.injected.iter_entries() {
                if let Some(mapped) =
                    reopt_planner::remap_rel_set(set, violation.rel_set, &mapping, next)
                {
                    match exactness {
                        Exactness::Exact => remapped.set(mapped, observed),
                        Exactness::AtLeast => remapped.set_at_least(mapped, observed),
                    }
                }
            }
            self.injected = remapped;
            // Compose the original-space mapping: the temp relation (index `next`)
            // expands to everything the materialized subset stood for.
            let mut new_to_original: Vec<Option<RelSet>> = vec![None; next + 1];
            for rel in 0..planned.spec.relation_count() {
                if let Some(Some(new_index)) = mapping.get(rel) {
                    new_to_original[*new_index] = self.to_original.get(rel).copied().flatten();
                }
            }
            new_to_original[next] = self.original_image(violation.rel_set);
            self.to_original = new_to_original;
            self.current = rewritten;
        } else {
            for correction in corrections {
                match violation_exactness(violation.trigger) {
                    Exactness::Exact => self.injected.set(correction.rel_set, correction.rows),
                    Exactness::AtLeast => {
                        self.injected.set_at_least(correction.rel_set, correction.rows)
                    }
                }
            }
            round.corrections = corrections.len();
            if degraded && !violation.rel_set.is_empty() {
                self.injected
                    .set(violation.rel_set, violation.actual_rows as f64);
                round.corrections += 1;
            }
        }
        self.rounds.push(round);
        Ok(())
    }

    /// The original-space image of a relation set in the *current* query's indexing,
    /// or `None` when any member has no image (see [`Driver::to_original`]).
    fn original_image(&self, set: RelSet) -> Option<RelSet> {
        let mut out = RelSet::EMPTY;
        for rel in set.iter() {
            out = out.union((*self.to_original.get(rel)?)?);
        }
        (!out.is_empty()).then_some(out)
    }

    /// Record exactness-tagged observations (in the current indexing) into the
    /// catalog's cross-query feedback cache, translated back to the original query's
    /// indexing and keyed by its normalized predicate signature. Observations that
    /// touch a relation with no original-space image are discarded — a key must
    /// never reference a driver-created temp or virtual leaf.
    fn record_feedback(&self, db: &Database, observations: &[(RelSet, f64, Exactness)]) {
        if !self.feedback || observations.is_empty() {
            return;
        }
        let Some(spec) = self.original_spec.as_ref() else {
            return;
        };
        for (set, rows, exactness) in observations {
            let Some(original) = self.original_image(*set) else {
                continue;
            };
            let Some(key) = feedback_key(spec, original) else {
                continue;
            };
            db.catalog()
                .feedback()
                .record(key, *rows, *exactness == Exactness::Exact);
        }
    }

    /// Apply a [`PolicyDecision::ReplanMidQuery`]: reuse completed breaker state as a
    /// virtual leaf where possible, re-inject every observation the aborted run
    /// produced (exact counts and overshooting lower bounds alike, harvested from its
    /// metrics tree), and re-plan the remainder.
    fn apply_mid_query(
        &mut self,
        db: &mut Database,
        planned: &PlannedQuery,
        plan_time: Duration,
        violation: Violation,
        partial_metrics: &QueryMetrics,
        states: Vec<BreakerState>,
    ) -> Result<(), DbError> {
        let spec = &planned.spec;
        let partial_time = partial_metrics.execution_time;
        let observations = harvest_observations(partial_metrics);
        let mut round = ReoptRound {
            kind: ReoptRoundKind::MidQuery,
            trigger: violation.trigger,
            rel_set: violation.rel_set,
            materialized_aliases: aliases_of(spec, violation.rel_set),
            temp_table: None,
            estimated_rows: violation.estimated_rows,
            actual_rows: violation.actual_rows,
            q_error: violation.q_error(),
            create_sql: None,
            materialization_time: Duration::ZERO,
            reused_rows: None,
            planning_time: plan_time,
            detection_time: partial_time,
            corrections: 0,
        };

        // Exact reusable state to collapse around: the violating subset itself when
        // the trigger was a reusable breaker completion; otherwise — a streaming
        // progress overshoot, or a policy that triggered on a non-reusable breaker
        // (merge/aggregate/sort inputs buffer no exact materialization) — the
        // largest completed reusable breaker elsewhere in the suspended plan, which
        // may already have been partially consumed by its parent (the buffered rows
        // themselves are complete, so the collapse stays exact; the re-planned
        // remainder recomputes any partially-done probing). When nothing is
        // reusable the round falls back to pure injection below.
        let exact_idx = (violation.trigger == ReoptTrigger::BreakerComplete)
            .then(|| {
                states
                    .iter()
                    .position(|state| state.rel_set == violation.rel_set)
            })
            .flatten();
        let reuse = match exact_idx {
            Some(idx) => {
                let mut states = states;
                Some(states.swap_remove(idx))
            }
            None => best_reusable_state(states, spec.all_relations(), violation.rel_set),
        };

        match reuse {
            Some(state) => {
                let BreakerState {
                    kind,
                    rel_set: subset,
                    schema,
                    rows,
                } = state;
                self.virt_counter += 1;
                let virt_name = format!("reopt_mq{}", self.virt_counter);
                let reused_rows = rows.len() as u64;
                let state_aliases = aliases_of(spec, subset);

                // Register the completed breaker state as a virtual leaf with true
                // statistics. Registration + ANALYZE is the whole materialization
                // cost — the rows were already built by the suspended pipeline.
                let materialize_start = Instant::now();
                db.register_materialized_table(&virt_name, schema.clone(), rows)?;
                let materialize_elapsed = materialize_start.elapsed();
                self.materialization_time += materialize_elapsed;
                round.materialization_time = materialize_elapsed;

                // Collapse the query around the virtual leaf and re-index every
                // observation that survives: the carried overrides, everything the
                // aborted run observed, and (for progress triggers) the violating
                // lower bound itself.
                let collapsed = collapse_spec(spec, subset, &virt_name, &virt_name, schema);
                let mut overrides = CardinalityOverrides::new();
                for (set, observed, exactness) in self.injected.iter_entries() {
                    if let Some(mapped) = collapsed.remap(set) {
                        match exactness {
                            Exactness::Exact => overrides.set(mapped, observed),
                            Exactness::AtLeast => overrides.set_at_least(mapped, observed),
                        }
                    }
                }
                for (set, observed, exactness) in &observations {
                    if let Some(mapped) = collapsed.remap(*set) {
                        match exactness {
                            Exactness::Exact => overrides.set(mapped, *observed),
                            Exactness::AtLeast => overrides.set_at_least(mapped, *observed),
                        }
                    }
                }
                // When the collapse happened around a different subset than the
                // violation (progress triggers, or a non-reusable breaker trigger
                // that fell back to another state), the violating observation itself
                // still needs injecting — last, and never downgrading a harvested
                // count (the violation includes the in-flight batch the suspension
                // discarded; `set_at_least` keeps whichever says more). The collapsed
                // subset's own cardinality is carried by the virtual table's
                // statistics.
                if subset != violation.rel_set {
                    if let Some(mapped) = collapsed.remap(violation.rel_set) {
                        match violation_exactness(violation.trigger) {
                            Exactness::Exact => {
                                overrides.set(mapped, violation.actual_rows as f64)
                            }
                            Exactness::AtLeast => {
                                overrides.set_at_least(mapped, violation.actual_rows as f64)
                            }
                        }
                    }
                }
                round.corrections = overrides.len();
                self.injected = overrides;

                // Compose the original-space mapping: the virtual leaf expands to
                // everything the collapsed subset stood for.
                let mut new_to_original: Vec<Option<RelSet>> =
                    vec![None; collapsed.virtual_index + 1];
                for rel in 0..spec.relation_count() {
                    if let Some(Some(new_index)) = collapsed.mapping.get(rel) {
                        new_to_original[*new_index] = self.to_original.get(rel).copied().flatten();
                    }
                }
                new_to_original[collapsed.virtual_index] = self.original_image(subset);
                self.to_original = new_to_original;

                self.annotations.push(format!(
                    "-- {virt_name}: reused in-flight {kind:?} state over [{}] ({reused_rows} rows)",
                    state_aliases.join(", "),
                ));
                self.created_tables.push(virt_name.clone());
                round.temp_table = Some(virt_name);
                round.reused_rows = Some(reused_rows);
                self.collapsed = Some(collapsed.spec);
            }
            None => {
                // Nothing reusable (e.g. a pure index-NL pipeline buffers no breaker
                // state at all): inject the observed bound plus everything else the
                // aborted run learned and re-plan from scratch — the point of the
                // cheap trigger is that very little work is lost, and in a pipelined
                // plan the operators above the violation have usually produced most
                // of their output too, so one suspension corrects many estimates.
                let mut corrections = 0usize;
                for (set, observed, exactness) in &observations {
                    match exactness {
                        Exactness::Exact => self.injected.set(*set, *observed),
                        Exactness::AtLeast => self.injected.set_at_least(*set, *observed),
                    }
                    corrections += 1;
                }
                // The violation goes in last, and never downgrades: its count
                // includes the in-flight batch the suspension discarded, so it can
                // exceed the metrics-tree count harvested for the same subset
                // (`set_at_least` keeps whichever says more).
                if !violation.rel_set.is_empty() {
                    if self.injected.get(violation.rel_set).is_none() {
                        corrections += 1;
                    }
                    match violation_exactness(violation.trigger) {
                        Exactness::Exact => self
                            .injected
                            .set(violation.rel_set, violation.actual_rows as f64),
                        Exactness::AtLeast => self
                            .injected
                            .set_at_least(violation.rel_set, violation.actual_rows as f64),
                    }
                }
                round.corrections = corrections;
            }
        }
        self.rounds.push(round);
        Ok(())
    }

    /// Build the report once a run completed and the policy accepted it.
    fn finalize(
        &mut self,
        policy_name: &str,
        threads: usize,
        planned: &PlannedQuery,
        rows: Vec<Row>,
        metrics: QueryMetrics,
    ) -> ReoptReport {
        let mut parts: Vec<String> = std::mem::take(&mut self.created_sql);
        parts.append(&mut self.annotations);
        let statement_sql = if self.collapsed.is_some() {
            // A collapsed query exists only as a bound spec; render it back to SQL
            // for the report (virtual tables appear under their generated names —
            // the text documents the executed shape, it is not meant to be re-run).
            spec_to_statement(&planned.spec).to_sql()
        } else if self.rounds.is_empty() {
            self.original.to_sql()
        } else {
            self.current.to_sql()
        };
        parts.push(format!("{statement_sql};"));
        ReoptReport {
            policy: policy_name.to_string(),
            threads,
            rounds: std::mem::take(&mut self.rounds),
            final_rows: rows,
            planning_time: self.planning_time,
            execution_time: self.materialization_time + metrics.execution_time,
            detection_time: self.detection_time,
            peak_buffered_rows: self.peak_buffered_rows,
            peak_buffered_bytes: self.peak_buffered_bytes,
            spilled_bytes: self.spilled_bytes,
            spill_partitions: self.spill_partitions,
            final_sql: parts.join("\n"),
            final_metrics: Some(metrics),
        }
    }
}

/// Execute one plan, forwarding events to the policy when `observe` is set, until it
/// completes or the policy suspends it.
fn run_pipeline(
    db: &Database,
    planned: &PlannedQuery,
    policy: &mut dyn ReoptPolicy,
    ctx: PolicyContext,
    observe: bool,
) -> Result<RunResult, DbError> {
    let executor = Executor::with_batch_size(db.storage(), db.batch_size())
        .with_threads(db.threads())
        .with_columnar(db.columnar())
        .with_priority(db.priority())
        .with_governor(std::sync::Arc::clone(db.governor()));
    let adapter = observe.then(|| {
        Rc::new(RefCell::new(PolicyObserver {
            policy,
            ctx,
            decision: None,
        }))
    });

    let (outcome, peak_buffered_rows, peak_buffered_bytes) = {
        let handle = adapter
            .as_ref()
            .map(|a| Rc::clone(a) as ObserverHandle<'_>);
        let mut pipeline = executor.open_observed(&planned.plan, handle)?;
        let mut rows: Vec<Row> = Vec::new();
        let outcome = loop {
            match pipeline.next_batch() {
                Ok(Some(batch)) => rows.extend(batch),
                Ok(None) => break RunOutcome::Completed(rows, pipeline.metrics()),
                Err(ExecError::Suspended) => {
                    break RunOutcome::Suspended(
                        pipeline.take_breaker_states(),
                        pipeline.metrics(),
                    )
                }
                Err(error) => return Err(error.into()),
            }
        };
        (
            outcome,
            pipeline.peak_buffered_rows(),
            pipeline.peak_buffered_bytes(),
        )
    };

    let decision = match adapter {
        Some(adapter) => {
            // The pipeline (and with it every operator's handle clone) is dropped, so
            // the adapter is uniquely owned again.
            Rc::try_unwrap(adapter)
                .unwrap_or_else(|_| unreachable!("pipeline dropped all observer handles"))
                .into_inner()
                .decision
        }
        None => None,
    };
    Ok(RunResult {
        outcome,
        decision,
        peak_buffered_rows,
        peak_buffered_bytes,
    })
}

/// The aliases of a relation subset, in index order.
fn aliases_of(spec: &QuerySpec, subset: RelSet) -> Vec<String> {
    subset
        .iter()
        .map(|rel| spec.relations[rel].alias.clone())
        .collect()
}

/// The largest completed reusable breaker state that can seed a virtual leaf without
/// making the violating subset inexpressible after the collapse: it must be a
/// non-empty proper subset of the query, and either disjoint from or contained in the
/// violating subset (a partial overlap would leave the fresh bound un-injectable, and
/// the same violation would immediately re-trigger).
fn best_reusable_state(
    states: Vec<BreakerState>,
    all_relations: RelSet,
    violation_set: RelSet,
) -> Option<BreakerState> {
    states
        .into_iter()
        .filter(|state| {
            !state.rel_set.is_empty() && state.rel_set.is_proper_subset_of(all_relations)
        })
        .filter(|state| {
            violation_set.is_disjoint(state.rel_set)
                || state.rel_set.is_subset_of(violation_set)
        })
        .max_by_key(|state| state.rel_set.len())
}

/// Render a bound (possibly collapsed) query back into a SELECT statement for the
/// report's `final_sql`. Virtual tables render under their generated names; the text
/// documents the executed shape, it is not meant to be re-runnable.
fn spec_to_statement(spec: &QuerySpec) -> SelectStatement {
    let mut predicates: Vec<Expr> = Vec::new();
    for rel_predicates in &spec.local_predicates {
        predicates.extend(rel_predicates.iter().cloned());
    }
    for edge in &spec.join_edges {
        predicates.push(edge.to_expr());
    }
    for (_, predicate) in &spec.complex_predicates {
        predicates.push(predicate.clone());
    }
    SelectStatement {
        items: spec.output.clone(),
        from: spec
            .relations
            .iter()
            .map(|relation| {
                if relation.alias.eq_ignore_ascii_case(&relation.table) {
                    TableRef::new(relation.table.clone())
                } else {
                    TableRef::aliased(relation.table.clone(), relation.alias.clone())
                }
            })
            .collect(),
        where_clause: reopt_expr::conjoin(&predicates),
        group_by: spec.group_by.clone(),
        order_by: spec.order_by.clone(),
        limit: spec.limit,
    }
}

/// Split a query around a relation subset: the subset becomes a `CREATE TEMP TABLE`
/// defining query and the remainder is rewritten to reference the temporary table
/// (Figure 6 of the paper).
pub fn materialize_subset(
    spec: &QuerySpec,
    current: &SelectStatement,
    subset: RelSet,
    temp_name: &str,
) -> (SelectStatement, SelectStatement) {
    let in_subset = |reference: &ColumnRef| -> bool {
        reference
            .qualifier
            .as_deref()
            .and_then(|alias| spec.relation_by_alias(alias))
            .map(|rel| subset.contains(rel))
            .unwrap_or(false)
    };

    // Columns of the subset that the remainder of the query still needs: anything
    // referenced by the SELECT list, GROUP BY, ORDER BY, a join edge crossing the
    // boundary, or a complex predicate not fully inside the subset.
    let mut needed: BTreeSet<ColumnRef> = BTreeSet::new();
    let note_refs = |needed: &mut BTreeSet<ColumnRef>, expr: &Expr| {
        let mut refs = Vec::new();
        reopt_expr::collect_column_refs(expr, &mut refs);
        for reference in refs {
            if in_subset(&reference) {
                needed.insert(reference);
            }
        }
    };
    for item in &current.items {
        match &item.expr {
            SelectExpr::Scalar(expr) => note_refs(&mut needed, expr),
            SelectExpr::Aggregate { arg: Some(expr), .. } => note_refs(&mut needed, expr),
            _ => {}
        }
    }
    for expr in &current.group_by {
        note_refs(&mut needed, expr);
    }
    for item in &current.order_by {
        note_refs(&mut needed, &item.expr);
    }
    for edge in &spec.join_edges {
        let inside = subset.contains(edge.left_rel) as usize + subset.contains(edge.right_rel) as usize;
        if inside == 1 {
            if subset.contains(edge.left_rel) {
                needed.insert(edge.left_column.clone());
            } else {
                needed.insert(edge.right_column.clone());
            }
        }
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if !pred_set.is_subset_of(subset) {
            note_refs(&mut needed, predicate);
        }
    }

    // The temp table's defining query: project the needed columns as `alias_column`.
    let temp_items: Vec<SelectItem> = if needed.is_empty() {
        // Nothing from the subset is referenced outside it: the subset is the
        // whole query and the select list is bare `count(*)` (wildcard selects
        // never reach the rewrite, see `Driver::run`). The temp table must
        // still hold ONE ROW PER JOIN ROW — materializing the aggregate itself
        // would make the rewritten `count(*)` count a single row.
        vec![SelectItem {
            expr: SelectExpr::Scalar(Expr::Literal(reopt_storage::Value::Int(1))),
            alias: Some("materialized_row".into()),
        }]
    } else {
        needed
            .iter()
            .map(|reference| SelectItem {
                expr: SelectExpr::Scalar(Expr::Column(reference.clone())),
                alias: Some(mangled_name(reference)),
            })
            .collect()
    };

    let mut temp_predicates: Vec<Expr> = Vec::new();
    for rel in subset.iter() {
        temp_predicates.extend(spec.local_predicates[rel].iter().cloned());
    }
    for edge in spec.edges_within(subset) {
        temp_predicates.push(edge.to_expr());
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if pred_set.is_subset_of(subset) {
            temp_predicates.push(predicate.clone());
        }
    }
    let temp_query = SelectStatement {
        items: temp_items,
        from: subset
            .iter()
            .map(|rel| {
                let relation = &spec.relations[rel];
                TableRef::aliased(relation.table.clone(), relation.alias.clone())
            })
            .collect(),
        where_clause: reopt_expr::conjoin(&temp_predicates),
        group_by: vec![],
        order_by: vec![],
        limit: None,
    };

    // The rewritten remainder: replace subset relations with the temp table and remap
    // every reference into the subset onto the temp table's mangled column names.
    let remap = |reference: &ColumnRef| -> ColumnRef {
        if in_subset(reference) {
            ColumnRef::qualified(temp_name, mangled_name(reference))
        } else {
            reference.clone()
        }
    };
    let remap_expr = |expr: &Expr| expr.map_column_refs(&remap);

    let rewritten_items: Vec<SelectItem> = current
        .items
        .iter()
        .map(|item| SelectItem {
            expr: match &item.expr {
                SelectExpr::Wildcard => SelectExpr::Wildcard,
                SelectExpr::Scalar(expr) => SelectExpr::Scalar(remap_expr(expr)),
                SelectExpr::Aggregate { func, arg } => SelectExpr::Aggregate {
                    func: *func,
                    arg: arg.as_ref().map(&remap_expr),
                },
            },
            alias: item.alias.clone(),
        })
        .collect();

    let mut rewritten_from: Vec<TableRef> = spec
        .relations
        .iter()
        .filter(|relation| !subset.contains(relation.index))
        .map(|relation| TableRef::aliased(relation.table.clone(), relation.alias.clone()))
        .collect();
    rewritten_from.push(TableRef::new(temp_name));

    let mut rewritten_predicates: Vec<Expr> = Vec::new();
    for relation in &spec.relations {
        if !subset.contains(relation.index) {
            rewritten_predicates.extend(spec.local_predicates[relation.index].iter().cloned());
        }
    }
    for edge in &spec.join_edges {
        let fully_inside = subset.contains(edge.left_rel) && subset.contains(edge.right_rel);
        if !fully_inside {
            rewritten_predicates.push(remap_expr(&edge.to_expr()));
        }
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if !pred_set.is_subset_of(subset) {
            rewritten_predicates.push(remap_expr(predicate));
        }
    }

    let rewritten = SelectStatement {
        items: rewritten_items,
        from: rewritten_from,
        where_clause: reopt_expr::conjoin(&rewritten_predicates),
        group_by: current.group_by.iter().map(&remap_expr).collect(),
        order_by: current
            .order_by
            .iter()
            .map(|item| reopt_sql::OrderByItem {
                expr: remap_expr(&item.expr),
                ascending: item.ascending,
            })
            .collect(),
        limit: current.limit,
    };

    (temp_query, rewritten)
}

/// The column name a subset column gets inside the temporary table (`alias_column`).
fn mangled_name(reference: &ColumnRef) -> String {
    match &reference.qualifier {
        Some(qualifier) => format!("{qualifier}_{}", reference.name),
        None => reference.name.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::test_database;
    use crate::policy::Correction;
    use crate::qerror::q_error;
    use reopt_planner::bind_select;
    use reopt_storage::Value;

    /// The skewed query: keyword 'kw0' is attached to every movie, so the default
    /// estimator badly underestimates the mk ⋈ k join.
    const SKEWED_SQL: &str = "SELECT min(t.title) AS movie_title, count(*) AS c
        FROM title AS t, movie_keyword AS mk, keyword AS k
        WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
          AND k.keyword = 'kw0' AND t.production_year > 1985";

    #[test]
    fn rewrite_splits_query_like_figure_6() {
        let db = test_database();
        let statement = parse_sql(SKEWED_SQL).unwrap();
        let select = statement.query().unwrap().clone();
        let spec = bind_select(&select, db.storage()).unwrap();
        let mk = spec.relation_by_alias("mk").unwrap();
        let k = spec.relation_by_alias("k").unwrap();
        let subset = RelSet::from_indexes([mk, k]);

        let (temp_query, rewritten) = materialize_subset(&spec, &select, subset, "temp1");
        let temp_sql = temp_query.to_sql();
        let rewritten_sql = rewritten.to_sql();

        // The temp query selects the join column needed by the remainder and applies
        // the keyword filter plus the mk-k join condition.
        assert!(temp_sql.contains("mk.movie_id AS mk_movie_id"));
        assert!(temp_sql.contains("k.keyword = 'kw0'"));
        assert!(temp_sql.contains("movie_keyword AS mk"));
        assert!(!temp_sql.contains("title"));

        // The rewritten query references the temp table and drops the materialized
        // relations.
        assert!(rewritten_sql.contains("temp1"));
        assert!(rewritten_sql.contains("t.id = temp1.mk_movie_id"));
        assert!(!rewritten_sql.contains("movie_keyword"));
        assert!(!rewritten_sql.contains("keyword AS k"));
        assert!(rewritten_sql.contains("t.production_year > 1985"));

        // Both render to parseable SQL.
        assert!(parse_sql(&format!("{temp_sql};")).is_ok());
        assert!(parse_sql(&format!("{rewritten_sql};")).is_ok());
    }

    #[test]
    fn materialize_mode_produces_correct_results() {
        let mut db = test_database();
        // Ground truth from a plain execution.
        let expected = db.execute(SKEWED_SQL).unwrap();

        let config = ReoptConfig {
            threshold: 4.0,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(report.reoptimized(), "expected at least one round");
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.policy, "materialize-restart");
        assert!(report.final_sql.contains("CREATE TEMP TABLE reopt_temp1"));
        assert!(report.rounds[0].q_error > 4.0);
        assert!(report.rounds[0].create_sql.is_some());
        assert_eq!(report.rounds[0].trigger, ReoptTrigger::DetectionRun);
        assert_eq!(report.rounds[0].corrections, 0, "the temp table carries the truth");
        assert!(!report.rounds[0].materialized_aliases.is_empty());
        // Temporary tables are cleaned up.
        assert!(!db.storage().contains_table("reopt_temp1"));
        assert!(report.total_time() >= report.execution_time);
    }

    #[test]
    fn high_threshold_never_triggers() {
        let mut db = test_database();
        let config = ReoptConfig::with_threshold(1e9);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(!report.reoptimized());
        assert!(report.final_sql.ends_with(';'));
        assert_eq!(report.detection_time, Duration::ZERO);
        let expected = db.execute(SKEWED_SQL).unwrap();
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn inject_only_mode_matches_results_without_temp_tables() {
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::InjectOnly,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.reoptimized());
        assert_eq!(report.policy, "inject-only");
        assert!(report.rounds.iter().all(|r| r.temp_table.is_none()));
        assert!(report.rounds.iter().all(|r| r.corrections == 1));
        assert_eq!(db.storage().table_count(), 3, "no temp tables left behind");
    }

    #[test]
    fn materializing_the_whole_query_keeps_count_semantics() {
        // A two-relation query whose only join IS the whole query: the offending
        // subset covers every relation and the select list is bare count(*), so
        // the temp table must materialize one row per join row, not the count.
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig::with_threshold(4.0);
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(report.reoptimized(), "skewed kw0 join must trigger");
        assert_eq!(report.final_rows, expected.rows);
        assert!(!db.storage().contains_table("reopt_temp1"));
    }

    #[test]
    fn wildcard_selects_replan_without_rewrite() {
        // `SELECT *` cannot survive the temp-table rewrite (subset columns get
        // mangled names), but with the projection pinned to FROM order it CAN be
        // re-planned: the materialize policy degrades to injecting the observed
        // count and restarts. The output must match plain execution as a multiset
        // (the corrected join order may emit rows in a different order).
        let mut db = test_database();
        let sql = "SELECT * FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let report = execute_with_reoptimization(
            &mut db,
            sql,
            &ReoptConfig::with_threshold(2.0).with_feedback(false),
        )
        .unwrap();
        assert!(
            report.reoptimized(),
            "the mis-estimated wildcard join must still be corrected"
        );
        assert!(
            report.rounds.iter().all(|r| r.temp_table.is_none()),
            "wildcard rounds must degrade to injection, never rewrite"
        );
        assert!(report.rounds.iter().all(|r| r.corrections >= 1));
        let mut got = report.final_rows.clone();
        let mut want = expected.rows.clone();
        got.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        want.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        assert_eq!(got, want, "re-planning changed the wildcard result set");
        assert!(report.detection_time > Duration::ZERO);
    }

    #[test]
    fn truncated_joins_under_limit_never_trigger() {
        // The LIMIT stops the executor after 5 of the 300 join rows, so the join's
        // actual_rows is a truncated count: the metrics must flag it as not exhausted
        // and detection must ignore it under every policy.
        let mut db = test_database();
        let sql = "SELECT mk.movie_id AS m FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0' LIMIT 5";
        let expected = db.execute(sql).unwrap();
        let metrics = expected.metrics.as_ref().unwrap();
        let truncated_joins: Vec<_> = metrics
            .root
            .joins_bottom_up()
            .into_iter()
            .filter(|join| !join.exhausted)
            .collect();
        assert!(
            !truncated_joins.is_empty(),
            "early termination must leave the join un-exhausted"
        );
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery] {
            let config = ReoptConfig {
                threshold: 1.1,
                mode,
                ..Default::default()
            };
            let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
            assert!(
                !report.reoptimized(),
                "truncated counts must not trigger rewrites ({mode:?})"
            );
            assert_eq!(report.final_rows, expected.rows, "{mode:?} changed the result");
        }
    }

    #[test]
    fn order_sensitive_limits_are_never_rewritten() {
        // The joins below a GROUP BY fully drain (they are exhausted and violate the
        // threshold), but LIMIT over a multi-group output keeps whichever groups the
        // plan emits first — re-planning could keep a *different* subset. Every policy
        // must leave such queries alone.
        let mut db = test_database();
        let sql = "SELECT mk.movie_id AS m, count(*) AS c
                   FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'
                   GROUP BY mk.movie_id LIMIT 5";
        let expected = db.execute(sql).unwrap();
        let metrics = expected.metrics.as_ref().unwrap();
        assert!(
            metrics.root.joins_bottom_up().iter().all(|j| j.exhausted),
            "the aggregate drains the joins even though the limit truncates groups"
        );
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly, ReoptMode::MidQuery] {
            let config = ReoptConfig {
                threshold: 1.1,
                mode,
                ..Default::default()
            };
            let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
            assert!(
                !report.reoptimized(),
                "order-sensitive LIMIT output must not be re-optimized ({mode:?})"
            );
            assert_eq!(report.final_rows, expected.rows, "{mode:?} changed the result");
        }
    }

    #[test]
    fn exhausted_joins_under_limit_are_detected() {
        // An aggregate query always produces one row, so LIMIT 5 never terminates
        // early: every operator drains, the joins are exhausted, and re-optimization
        // under LIMIT works again (the ROADMAP's "Re-optimization under LIMIT" item).
        let mut db = test_database();
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk, keyword AS k
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
                     AND k.keyword = 'kw0' AND t.production_year > 1985 LIMIT 5";
        let expected = db.execute(sql).unwrap();
        let metrics = expected.metrics.as_ref().unwrap();
        assert!(
            metrics.root.joins_bottom_up().iter().all(|j| j.exhausted),
            "an aggregate below the limit drains every join"
        );
        for mode in [ReoptMode::Materialize, ReoptMode::InjectOnly] {
            // Feedback off: this test runs both modes against the same database and
            // asserts each one re-discovers the violation from scratch.
            let config = ReoptConfig {
                threshold: 4.0,
                mode,
                feedback: false,
                ..Default::default()
            };
            let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
            assert!(
                report.reoptimized(),
                "exhausted counts under LIMIT must be detectable ({mode:?})"
            );
            assert_eq!(report.final_rows, expected.rows, "{mode:?} changed the result");
        }
    }

    /// A database whose plans only use hash joins (and sequential scans), so the
    /// skewed subtree deterministically lands on a hash-join build side — the state
    /// the mid-query policy reuses.
    fn hash_join_only_database() -> Database {
        crate::database::tests::test_database_with_config(reopt_planner::OptimizerConfig {
            enable_index_scans: false,
            enable_index_nl_joins: false,
            enable_merge_joins: false,
            ..Default::default()
        })
    }

    /// A database whose plans lean exclusively on index nested-loop joins — streaming
    /// pipelines with no reusable breaker state at all, the shape the ROADMAP said
    /// MidQuery could never fire on before progress events existed.
    fn index_nl_only_database() -> Database {
        crate::database::tests::test_database_with_config(reopt_planner::OptimizerConfig {
            enable_hash_joins: false,
            enable_merge_joins: false,
            ..Default::default()
        })
    }

    #[test]
    fn mid_query_mode_matches_plain_results_and_reuses_build_state() {
        let mut db = hash_join_only_database();
        let expected = db.execute(SKEWED_SQL).unwrap();

        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.reoptimized(), "the skewed build side must trigger");
        assert_eq!(report.policy, "mid-query");

        // Every round is a tagged mid-query round that reused breaker state.
        for round in &report.rounds {
            assert_eq!(round.kind, ReoptRoundKind::MidQuery);
            assert_eq!(round.trigger, ReoptTrigger::BreakerComplete);
            assert!(round.create_sql.is_none(), "no CREATE TEMP TABLE is issued");
            assert!(round.reused_rows.unwrap() > 0, "build state must be reused");
            assert!(round.q_error > 4.0);
        }
        let round = &report.rounds[0];
        let virt_name = round.temp_table.clone().unwrap();
        assert!(virt_name.starts_with("reopt_mq"));

        // Reuse is visible in the final metrics: the virtual table appears as a scan
        // producing exactly the reused rows — the subtree behind it never re-ran.
        let metrics = report.final_metrics.as_ref().expect("final run has metrics");
        let mut reused_scan_rows = None;
        metrics.root.walk(&mut |node| {
            if node.metrics.label.contains(&virt_name) {
                reused_scan_rows = Some(node.metrics.actual_rows);
            }
        });
        assert_eq!(
            reused_scan_rows,
            Some(round.reused_rows.unwrap()),
            "the re-planned query must scan the reused state: {}",
            metrics.root.render()
        );

        // The report documents the reuse and the collapsed final query.
        assert!(report.final_sql.contains(&virt_name), "{}", report.final_sql);
        assert!(report.final_sql.contains("-- reopt_mq1: reused in-flight"));
        // Virtual tables are temporary and cleaned up.
        assert!(!db.storage().contains_table(&virt_name));
        // The discarded work (detection) is accounted separately.
        assert!(report.total_time() >= report.execution_time);
    }

    #[test]
    fn index_nl_pipelines_replan_on_progress_overshoot() {
        // The ROADMAP's "mid-query triggers for index-NL pipelines" item: plans whose
        // joins are all index nested loops buffer no breaker state, so the old
        // breaker-only monitor never fired. Streaming progress events now surface the
        // overshoot (the skewed kw0 join produces 25x its estimate) and the policy
        // re-plans mid-flight by injecting the observed bound.
        let mut db = index_nl_only_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let metrics = expected.metrics.as_ref().unwrap();
        let worst = metrics
            .root
            .joins_bottom_up()
            .iter()
            .map(|j| j.q_error())
            .fold(1.0f64, f64::max);
        assert!(worst > 4.0, "the skewed join must be badly mis-estimated ({worst})");

        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            report.reoptimized(),
            "streaming progress must trigger where breakers cannot:\n{}",
            report.final_sql
        );
        assert_eq!(report.final_rows, expected.rows, "re-planning changed the result");
        let round = &report.rounds[0];
        assert_eq!(round.kind, ReoptRoundKind::MidQuery);
        assert_eq!(round.trigger, ReoptTrigger::Progress);
        assert!(round.corrections >= 1, "the observed bound must be injected");
        assert!(round.q_error > 4.0);
        // An index-NL pipeline has nothing to reuse; the round documents that.
        assert_eq!(round.reused_rows, None);
        assert!(round.temp_table.is_none());
        // The rendered report tags the trigger.
        assert!(report.render().contains("[mid-query via progress]"), "{}", report.render());
    }

    #[test]
    fn mid_query_triggers_on_default_plans() {
        // With the default optimizer configuration the synthetic-data plans lean on
        // index-NL joins (see BENCH_MIDQUERY.json notes) — exactly the shape that
        // previously made MidQuery a silent no-op. Progress triggers close that gap.
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(report.reoptimized(), "default plans must now trigger mid-query rounds");
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn mid_query_report_renders_round_kinds() {
        let mut db = hash_join_only_database();
        // Feedback off: the second (restart) run must mis-estimate the same join
        // again rather than be seeded by what the first run learned.
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            feedback: false,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        let rendered = report.render();
        assert!(rendered.contains("[mid-query via breaker]"), "{rendered}");
        assert!(rendered.contains("reused"), "{rendered}");
        assert!(rendered.contains("policy mid-query"), "{rendered}");
        assert!(!rendered.contains("[restart]"), "{rendered}");

        let restart = execute_with_reoptimization(
            &mut db,
            SKEWED_SQL,
            &ReoptConfig::with_threshold(4.0).with_feedback(false),
        )
        .unwrap();
        let rendered = restart.render();
        assert!(rendered.contains("[restart]"), "{rendered}");
        assert!(rendered.contains("materialized as"), "{rendered}");
    }

    #[test]
    fn mid_query_mode_works_under_limit() {
        // Mid-query detection observes breaker completions, which are full drains
        // even under a LIMIT — the mode needs no LIMIT carve-out at all.
        let mut db = hash_join_only_database();
        let sql = "SELECT count(*) AS c
                   FROM title AS t, movie_keyword AS mk, keyword AS k
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
                     AND k.keyword = 'kw0' LIMIT 3";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(report.reoptimized(), "breaker completions are LIMIT-safe");
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn mid_query_high_threshold_never_triggers() {
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let config = ReoptConfig {
            threshold: 1e9,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(!report.reoptimized());
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.detection_time, Duration::ZERO);
        assert!(report.final_sql.ends_with(';'));
    }

    #[test]
    fn mid_query_wildcards_execute_plain() {
        let mut db = hash_join_only_database();
        let sql = "SELECT * FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig {
            threshold: 2.0,
            mode: ReoptMode::MidQuery,
            ..Default::default()
        };
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(!report.reoptimized(), "wildcard queries must run unmodified");
        assert_eq!(report.final_rows, expected.rows);
    }

    #[test]
    fn non_select_statements_are_rejected() {
        let mut db = test_database();
        // A parse failure surfaces as a parse error, not a panic.
        let err = execute_with_reoptimization(&mut db, "NOT SQL", &ReoptConfig::default());
        assert!(err.is_err());
    }

    /// The worst join Q-error observed when executing `sql` with the default
    /// estimator — the quantity the policies compare against their threshold.
    fn worst_join_q_error(db: &mut Database, sql: &str) -> f64 {
        let output = db.execute(sql).unwrap();
        output
            .metrics
            .as_ref()
            .unwrap()
            .root
            .joins_bottom_up()
            .iter()
            .map(|j| j.q_error())
            .fold(1.0f64, f64::max)
    }

    #[test]
    fn threshold_just_below_worst_q_error_triggers_replanning() {
        let mut db = test_database();
        let worst = worst_join_q_error(&mut db, SKEWED_SQL);
        assert!(worst > 1.0, "the skewed query must show estimation error");

        let config = ReoptConfig::with_threshold(worst * 0.99);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            report.reoptimized(),
            "threshold {} below worst q-error {worst} must trigger",
            worst * 0.99
        );
        assert!(report.rounds[0].q_error > config.threshold);
    }

    #[test]
    fn threshold_just_above_worst_q_error_skips_replanning() {
        let mut db = test_database();
        let worst = worst_join_q_error(&mut db, SKEWED_SQL);

        let config = ReoptConfig::with_threshold(worst * 1.01);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            !report.reoptimized(),
            "threshold {} above worst q-error {worst} must not trigger",
            worst * 1.01
        );
        // A skipped policy charges no detection time and leaves no rounds.
        assert!(report.rounds.is_empty());
        assert_eq!(report.detection_time, Duration::ZERO);
    }

    #[test]
    fn reoptimized_count_matches_plain_execution_on_unskewed_query() {
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM title AS t, movie_keyword AS mk
                   WHERE t.id = mk.movie_id AND t.production_year > 2010";
        let expected = db.execute(sql).unwrap();
        let report =
            execute_with_reoptimization(&mut db, sql, &ReoptConfig::with_threshold(2.0)).unwrap();
        assert_eq!(report.final_rows[0].value(0), expected.rows[0].value(0));
        assert_eq!(
            report.final_rows[0].value(0).as_int().unwrap(),
            expected.rows[0].value(0).as_int().unwrap()
        );
        assert_ne!(expected.rows[0].value(0), &Value::Int(0));
    }

    // -----------------------------------------------------------------------
    // The policy API itself
    // -----------------------------------------------------------------------

    /// A policy that restarts (inject-only) as soon as the *first* reusable breaker
    /// completion violates its threshold — exercising the event-triggered-restart
    /// path of the driver, which abandons the partial run instead of paying a full
    /// detection execution.
    struct RestartOnFirstBreaker {
        threshold: f64,
        fired: bool,
    }

    impl ReoptPolicy for RestartOnFirstBreaker {
        fn name(&self) -> &str {
            "restart-on-first-breaker"
        }

        fn wants_events(&self) -> bool {
            true
        }

        fn on_event(&mut self, event: &ExecEvent, _ctx: &PolicyContext) -> PolicyDecision {
            let ExecEvent::BreakerComplete(breaker) = event else {
                return PolicyDecision::Continue;
            };
            if self.fired
                || breaker.rel_set.is_empty()
                || q_error(breaker.estimated_rows, breaker.actual_rows as f64) <= self.threshold
            {
                return PolicyDecision::Continue;
            }
            self.fired = true;
            PolicyDecision::Restart {
                materialize: false,
                violation: Violation {
                    rel_set: breaker.rel_set,
                    estimated_rows: breaker.estimated_rows,
                    actual_rows: breaker.actual_rows,
                    trigger: ReoptTrigger::BreakerComplete,
                },
                corrections: vec![Correction {
                    rel_set: breaker.rel_set,
                    rows: breaker.actual_rows as f64,
                }],
            }
        }

        fn on_complete(
            &mut self,
            _metrics: &QueryMetrics,
            _spec: &QuerySpec,
            _ctx: &PolicyContext,
        ) -> PolicyDecision {
            PolicyDecision::Continue
        }
    }

    /// A policy that re-plans mid-query on ANY breaker violation, including
    /// non-reusable ones (merge/aggregate/sort inputs) — the driver must fall back to
    /// injection instead of failing when no exact state is extractable.
    struct ReplanOnAnyBreaker {
        threshold: f64,
    }

    impl ReoptPolicy for ReplanOnAnyBreaker {
        fn name(&self) -> &str {
            "replan-on-any-breaker"
        }

        fn wants_events(&self) -> bool {
            true
        }

        fn on_event(&mut self, event: &ExecEvent, ctx: &PolicyContext) -> PolicyDecision {
            let ExecEvent::BreakerComplete(breaker) = event else {
                return PolicyDecision::Continue;
            };
            if breaker.rel_set.is_empty()
                || !breaker.rel_set.is_proper_subset_of(ctx.all_relations)
                || q_error(breaker.estimated_rows, breaker.actual_rows as f64) <= self.threshold
            {
                return PolicyDecision::Continue;
            }
            PolicyDecision::ReplanMidQuery {
                violation: Violation {
                    rel_set: breaker.rel_set,
                    estimated_rows: breaker.estimated_rows,
                    actual_rows: breaker.actual_rows,
                    trigger: ReoptTrigger::BreakerComplete,
                },
            }
        }

        fn on_complete(
            &mut self,
            _: &QueryMetrics,
            _: &QuerySpec,
            _: &PolicyContext,
        ) -> PolicyDecision {
            PolicyDecision::Continue
        }
    }

    #[test]
    fn non_reusable_breaker_triggers_fall_back_to_injection() {
        // Merge-join-only plans: the skewed mk ⋈ k subtree surfaces as a MergeInput
        // breaker completion, which buffers no reusable materialization. Triggering
        // on it must degrade gracefully to an inject-and-replan round, not error.
        let mut db = crate::database::tests::test_database_with_config(
            reopt_planner::OptimizerConfig {
                enable_hash_joins: false,
                enable_index_nl_joins: false,
                enable_index_scans: false,
                ..Default::default()
            },
        );
        let expected = db.execute(SKEWED_SQL).unwrap();
        let mut policy = ReplanOnAnyBreaker { threshold: 4.0 };
        let report = execute_with_policy(&mut db, SKEWED_SQL, &mut policy).unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert!(report.reoptimized(), "the skewed merge input must trigger");
        let round = &report.rounds[0];
        assert_eq!(round.kind, ReoptRoundKind::MidQuery);
        assert_eq!(round.trigger, ReoptTrigger::BreakerComplete);
        assert!(round.corrections >= 1, "the observation must be injected");
    }

    #[test]
    fn custom_policies_can_restart_from_events() {
        let mut db = hash_join_only_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let mut policy = RestartOnFirstBreaker {
            threshold: 4.0,
            fired: false,
        };
        let report = execute_with_policy(&mut db, SKEWED_SQL, &mut policy).unwrap();
        assert_eq!(report.policy, "restart-on-first-breaker");
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.rounds.len(), 1);
        let round = &report.rounds[0];
        // An event-triggered restart: restart semantics, in-flight trigger.
        assert_eq!(round.kind, ReoptRoundKind::Restart);
        assert_eq!(round.trigger, ReoptTrigger::BreakerComplete);
        assert_eq!(round.corrections, 1);
        assert!(round.temp_table.is_none());
        assert!(report.render().contains("[restart via breaker]"), "{}", report.render());
    }

    #[test]
    fn user_temp_tables_survive_every_policy() {
        // The driver drops exactly the temp/virtual tables it created — a session
        // temp table the user made beforehand must survive both non-materializing
        // and materializing policies.
        let mut db = test_database();
        db.execute(
            "CREATE TEMP TABLE user_temp AS SELECT k.id AS kid FROM keyword AS k",
        )
        .unwrap();
        for mode in [ReoptMode::InjectOnly, ReoptMode::MidQuery, ReoptMode::Materialize] {
            let config = ReoptConfig {
                threshold: 4.0,
                mode,
                ..Default::default()
            };
            execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
            assert!(
                db.storage().contains_table("user_temp"),
                "{mode:?} dropped a user-created temp table"
            );
        }
        assert!(!db.storage().contains_table("reopt_temp1"), "driver tables are dropped");
        db.drop_temporary_tables();
        assert!(!db.storage().contains_table("user_temp"));
    }

    /// Injects on its first round, then materializes on the second — mixing the two
    /// restart flavors, which forces the driver to remap the carried overrides
    /// across the temp-table rewrite's re-indexing.
    struct InjectThenMaterialize {
        threshold: f64,
        rounds_done: usize,
    }

    impl ReoptPolicy for InjectThenMaterialize {
        fn name(&self) -> &str {
            "inject-then-materialize"
        }

        fn on_complete(
            &mut self,
            metrics: &QueryMetrics,
            _spec: &QuerySpec,
            _ctx: &PolicyContext,
        ) -> PolicyDecision {
            let joins = metrics.root.joins_bottom_up();
            let target = match self.rounds_done {
                // Round 1: the worst violating join, injected.
                0 => joins
                    .iter()
                    .find(|join| join.exhausted && join.q_error() > self.threshold)
                    .copied(),
                // Round 2: any exhausted multi-relation join, materialized — with
                // the round-1 override still carried in the driver.
                1 => joins
                    .iter()
                    .find(|join| join.exhausted && join.rel_set.len() >= 2)
                    .copied(),
                _ => None,
            };
            let Some(join) = target else {
                return PolicyDecision::Continue;
            };
            let materialize = self.rounds_done == 1;
            self.rounds_done += 1;
            PolicyDecision::Restart {
                materialize,
                violation: Violation {
                    rel_set: join.rel_set,
                    estimated_rows: join.estimated_rows,
                    actual_rows: join.actual_rows,
                    trigger: ReoptTrigger::DetectionRun,
                },
                corrections: if materialize {
                    Vec::new()
                } else {
                    vec![Correction {
                        rel_set: join.rel_set,
                        rows: join.actual_rows as f64,
                    }]
                },
            }
        }
    }

    #[test]
    fn inject_then_materialize_rounds_compose() {
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let mut policy = InjectThenMaterialize {
            threshold: 4.0,
            rounds_done: 0,
        };
        let report = execute_with_policy(&mut db, SKEWED_SQL, &mut policy).unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.rounds.len(), 2, "{}", report.render());
        assert!(report.rounds[0].temp_table.is_none());
        assert!(report.rounds[1].temp_table.is_some());
        assert!(!db.storage().contains_table("reopt_temp1"));
    }

    #[test]
    fn zero_round_budget_runs_plain() {
        struct EagerButBudgetless;
        impl ReoptPolicy for EagerButBudgetless {
            fn name(&self) -> &str {
                "budgetless"
            }
            fn max_rounds(&self) -> usize {
                0
            }
            fn on_complete(
                &mut self,
                _: &QueryMetrics,
                _: &QuerySpec,
                _: &PolicyContext,
            ) -> PolicyDecision {
                panic!("a zero-budget policy must never be consulted");
            }
        }
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let report = execute_with_policy(&mut db, SKEWED_SQL, &mut EagerButBudgetless).unwrap();
        assert!(!report.reoptimized());
        assert_eq!(report.final_rows, expected.rows);
        assert_eq!(report.policy, "budgetless");
    }

    #[test]
    fn replan_mid_query_from_on_complete_is_rejected() {
        struct BadPolicy;
        impl ReoptPolicy for BadPolicy {
            fn name(&self) -> &str {
                "bad"
            }
            fn on_complete(
                &mut self,
                _: &QueryMetrics,
                _: &QuerySpec,
                _: &PolicyContext,
            ) -> PolicyDecision {
                PolicyDecision::ReplanMidQuery {
                    violation: Violation {
                        rel_set: RelSet::single(0),
                        estimated_rows: 1.0,
                        actual_rows: 100,
                        trigger: ReoptTrigger::DetectionRun,
                    },
                }
            }
        }
        let mut db = test_database();
        let err = execute_with_policy(&mut db, SKEWED_SQL, &mut BadPolicy);
        assert!(err.is_err(), "ReplanMidQuery from on_complete must be rejected");
    }

    #[test]
    fn feedback_seeds_the_next_run_of_the_same_template() {
        // The tentpole scenario: the first run of the skewed query discovers the
        // mis-estimate the hard way (re-optimization rounds); the harvested truths
        // land in the catalog's feedback cache and the second run of the same
        // template plans right from the start.
        let mut db = test_database();
        let expected = db.execute(SKEWED_SQL).unwrap();
        let config = ReoptConfig::with_threshold(4.0).with_feedback(true);

        let first = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(first.reoptimized(), "the first run must pay for the discovery");
        assert_eq!(first.final_rows, expected.rows);
        assert!(
            !db.catalog().feedback().is_empty(),
            "the run must leave observations behind"
        );

        let second = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert_eq!(second.final_rows, expected.rows, "seeding changed the result");
        assert!(
            second.rounds.len() < first.rounds.len(),
            "the seeded run must need fewer rounds ({} vs {})",
            second.rounds.len(),
            first.rounds.len()
        );
    }

    #[test]
    fn feedback_seeds_across_modes_and_query_variants() {
        // Observations are keyed by (relation set, predicate signature), not by the
        // whole query: a different SELECT list and alias spelling over the same
        // joins and predicates still hits the cached entries, and a different
        // policy consumes what another policy learned.
        let mut db = test_database();
        let config = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::InjectOnly,
            feedback: true,
            ..Default::default()
        };
        let first = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(first.reoptimized());

        // Same join graph and predicates, different aliases, projection and mode.
        let variant = "SELECT count(*) AS n
            FROM title AS film, movie_keyword AS link, keyword AS tag
            WHERE film.id = link.movie_id AND link.keyword_id = tag.id
              AND tag.keyword = 'kw0' AND film.production_year > 1985";
        let expected = db.execute(variant).unwrap();
        let report = execute_with_reoptimization(
            &mut db,
            variant,
            &ReoptConfig::with_threshold(4.0).with_feedback(true),
        )
        .unwrap();
        assert_eq!(report.final_rows, expected.rows);
        assert!(
            !report.reoptimized(),
            "the variant must be seeded by the first run's observations:\n{}",
            report.render()
        );
    }

    #[test]
    fn feedback_keys_never_reference_driver_created_tables() {
        // The stale-override hazard: materialize restarts re-index observations
        // against `reopt_temp*` tables and mid-query rounds against `reopt_mq*`
        // virtual leaves. Every recorded key must be mapped back to the original
        // relations (or discarded) — a key naming a driver-created table would
        // anchor a later, unrelated query on garbage.
        let mut db = test_database();
        let config = ReoptConfig::with_threshold(4.0).with_feedback(true);
        let report = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(
            report.rounds.iter().any(|r| r.temp_table.is_some()),
            "the scenario must actually rewrite through a temp table"
        );

        let mut db2 = crate::database::tests::test_database_with_config(
            reopt_planner::OptimizerConfig {
                enable_index_scans: false,
                enable_index_nl_joins: false,
                enable_merge_joins: false,
                ..Default::default()
            },
        );
        let mid = ReoptConfig {
            threshold: 4.0,
            mode: ReoptMode::MidQuery,
            feedback: true,
            ..Default::default()
        };
        let mid_report = execute_with_reoptimization(&mut db2, SKEWED_SQL, &mid).unwrap();
        assert!(
            mid_report.rounds.iter().any(|r| {
                r.temp_table.as_deref().is_some_and(|t| t.starts_with("reopt_mq"))
            }),
            "the scenario must collapse through a virtual leaf"
        );

        for db in [&db, &db2] {
            assert!(!db.catalog().feedback().is_empty());
            for (key, _, _) in db.catalog().feedback().iter() {
                for relation in &key.relations {
                    assert!(
                        !relation.table.starts_with("reopt_"),
                        "feedback key references a driver-created table: {key:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn ingest_analyze_and_temp_drop_invalidate_feedback() {
        let mut db = test_database();
        let config = ReoptConfig::with_threshold(4.0).with_feedback(true);
        let references = |db: &Database, table: &str| {
            db.catalog()
                .feedback()
                .iter()
                .any(|(key, _, _)| key.references_table(table))
        };
        let populate = |db: &mut Database| {
            execute_with_reoptimization(db, SKEWED_SQL, &config).unwrap();
            assert!(references(db, "keyword") && references(db, "movie_keyword"));
        };

        // Ingest into a referenced table drops the stale entries immediately;
        // entries over unrelated subsets survive.
        populate(&mut db);
        db.ingest_rows(
            "keyword",
            vec![Row::from_values(vec![Value::Int(50), Value::from("kw50")])],
        )
        .unwrap();
        assert!(
            !references(&db, "keyword"),
            "ingest must evict entries referencing the table"
        );
        assert!(
            !db.catalog().feedback().is_empty(),
            "subsets not touching the ingested table must survive"
        );

        // ANALYZE refreshes statistics and likewise forgets what was learned
        // against the old ones.
        populate(&mut db);
        db.analyze("movie_keyword").unwrap();
        assert!(
            !references(&db, "movie_keyword"),
            "ANALYZE must evict entries referencing the table"
        );

        // Dropping a temporary table takes its feedback entries with it.
        populate(&mut db);
        db.execute(
            "CREATE TEMP TABLE kw0_links AS
               SELECT mk.movie_id AS movie_id FROM movie_keyword AS mk, keyword AS k
               WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'",
        )
        .unwrap();
        execute_with_reoptimization(
            &mut db,
            "SELECT count(*) AS c FROM title AS t, kw0_links AS l WHERE t.id = l.movie_id",
            &config,
        )
        .unwrap();
        let references_temp = |db: &Database| {
            db.catalog()
                .feedback()
                .iter()
                .any(|(key, _, _)| key.references_table("kw0_links"))
        };
        assert!(references_temp(&db), "the temp-table query must record feedback");
        db.drop_temporary_tables();
        assert!(
            !references_temp(&db),
            "dropping the temp table must evict its feedback entries"
        );
        assert!(
            !db.catalog().feedback().is_empty(),
            "entries over base tables survive the temp drop"
        );
    }

    #[test]
    fn feedback_disabled_records_and_seeds_nothing() {
        let mut db = test_database();
        let config = ReoptConfig::with_threshold(4.0).with_feedback(false);
        let first = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert!(first.reoptimized());
        assert!(db.catalog().feedback().is_empty(), "feedback off must not record");
        let second = execute_with_reoptimization(&mut db, SKEWED_SQL, &config).unwrap();
        assert_eq!(
            second.rounds.len(),
            first.rounds.len(),
            "without feedback every run rediscovers the same violations"
        );
    }

    #[test]
    fn wildcard_join_corrects_through_inject_rounds() {
        // Regression (satellite of the wildcard carve-out fix): a badly
        // mis-estimated `SELECT *` join must now actually get corrected — the
        // restart rounds re-plan it with the observed counts injected — instead of
        // silently running the bad plan to completion.
        let mut db = test_database();
        let sql = "SELECT * FROM title AS t, movie_keyword AS mk, keyword AS k
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id
                     AND k.keyword = 'kw0' AND t.production_year > 1985";
        let expected = db.execute(sql).unwrap();
        let config = ReoptConfig::with_threshold(4.0).with_feedback(false);
        let report = execute_with_reoptimization(&mut db, sql, &config).unwrap();
        assert!(report.reoptimized(), "the skewed wildcard join must trigger");
        assert!(report.rounds.iter().all(|r| r.temp_table.is_none()));
        let mut got: Vec<String> = report.final_rows.iter().map(|r| format!("{r}")).collect();
        let mut want: Vec<String> = expected.rows.iter().map(|r| format!("{r}")).collect();
        got.sort();
        want.sort();
        assert_eq!(got, want, "correction changed the wildcard result set");
        // The final round's injected counts leave the re-planned query accurate:
        // its worst q-error must beat the original violation.
        let final_metrics = report.final_metrics.as_ref().unwrap();
        let worst_final = final_metrics
            .root
            .joins_bottom_up()
            .iter()
            .map(|j| j.q_error())
            .fold(1.0f64, f64::max);
        assert!(
            worst_final < report.rounds[0].q_error,
            "the corrected plan must estimate better than the violation \
             ({worst_final} vs {})",
            report.rounds[0].q_error
        );
    }
}
