//! The engine-level error type.

use reopt_executor::ExecError;
use reopt_planner::PlanError;
use reopt_sql::ParseError;
use reopt_storage::StorageError;
use std::fmt;

/// Any error the engine can produce while handling a statement.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// SQL could not be parsed.
    Parse(ParseError),
    /// The statement could not be bound or optimized.
    Plan(PlanError),
    /// The plan could not be executed.
    Exec(ExecError),
    /// A storage-level failure (DDL, loading).
    Storage(StorageError),
    /// The re-optimization controller hit its round limit or another internal bound.
    Reoptimization(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Parse(e) => write!(f, "{e}"),
            DbError::Plan(e) => write!(f, "{e}"),
            DbError::Exec(e) => write!(f, "{e}"),
            DbError::Storage(e) => write!(f, "{e}"),
            DbError::Reoptimization(detail) => write!(f, "re-optimization error: {detail}"),
        }
    }
}

impl std::error::Error for DbError {}

impl From<ParseError> for DbError {
    fn from(e: ParseError) -> Self {
        DbError::Parse(e)
    }
}

impl From<PlanError> for DbError {
    fn from(e: PlanError) -> Self {
        DbError::Plan(e)
    }
}

impl From<ExecError> for DbError {
    fn from(e: ExecError) -> Self {
        DbError::Exec(e)
    }
}

impl From<StorageError> for DbError {
    fn from(e: StorageError) -> Self {
        DbError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_preserve_information() {
        let e: DbError = ParseError::new("bad token", 3).into();
        assert!(e.to_string().contains("bad token"));
        let e: DbError = PlanError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("'t'"));
        let e: DbError = ExecError::InvalidPlan("x".into()).into();
        assert!(e.to_string().contains("invalid plan"));
        let e: DbError = StorageError::TableNotFound("z".into()).into();
        assert!(e.to_string().contains("'z'"));
        assert!(DbError::Reoptimization("loop".into())
            .to_string()
            .contains("loop"));
    }
}
