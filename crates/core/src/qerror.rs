//! The Q-error metric and the re-optimization trigger threshold.

/// The Q-error threshold the paper settles on after the Figure-7 sweep: re-optimize a
/// join whose true cardinality is more than 32× larger or smaller than estimated.
pub const DEFAULT_REOPT_THRESHOLD: f64 = 32.0;

/// The Q-error of an estimate: `max(estimated/actual, actual/estimated)`, with both
/// sides clamped to at least one row. A perfect estimate has Q-error 1; the metric is
/// symmetric in over- and under-estimation (Moerkotte, Neumann & Steidl, reference \[36\]
/// of the paper).
pub fn q_error(estimated: f64, actual: f64) -> f64 {
    let estimated = estimated.max(1.0);
    let actual = actual.max(1.0);
    (estimated / actual).max(actual / estimated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimate_has_q_error_one() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn symmetric_in_direction() {
        assert_eq!(q_error(10.0, 1000.0), 100.0);
        assert_eq!(q_error(1000.0, 10.0), 100.0);
    }

    #[test]
    fn clamps_small_values() {
        assert_eq!(q_error(0.001, 50.0), 50.0);
        assert_eq!(q_error(50.0, 0.0), 50.0);
    }

    #[test]
    fn default_threshold_matches_paper() {
        assert_eq!(DEFAULT_REOPT_THRESHOLD, 32.0);
    }

    #[test]
    fn symmetric_over_a_grid_of_cardinalities() {
        let cards = [0.0, 0.5, 1.0, 2.0, 10.0, 1e3, 1e6, 1e12];
        for &a in &cards {
            for &b in &cards {
                assert_eq!(q_error(a, b), q_error(b, a), "q({a}, {b}) not symmetric");
            }
        }
    }

    #[test]
    fn identity_for_any_cardinality() {
        for x in [0.0, 1.0, 3.5, 1e4, 1e9, f64::MAX] {
            assert_eq!(q_error(x, x), 1.0, "q({x}, {x}) should be 1");
        }
    }

    #[test]
    fn zero_and_empty_cardinalities_clamp_to_one_row() {
        // An empty actual result is treated as one row, so the error stays finite
        // and equals the (clamped) estimate.
        assert_eq!(q_error(1000.0, 0.0), 1000.0);
        assert_eq!(q_error(0.0, 1000.0), 1000.0);
        // Both empty: a perfect estimate, not 0/0.
        assert_eq!(q_error(0.0, 0.0), 1.0);
        // Sub-row estimates clamp up rather than exploding the ratio.
        assert_eq!(q_error(1e-300, 1.0), 1.0);
        assert_eq!(q_error(f64::MIN_POSITIVE, 2.0), 2.0);
    }

    #[test]
    fn q_error_is_at_least_one() {
        let cards = [0.0, 0.25, 1.0, 7.0, 123.0, 1e8];
        for &a in &cards {
            for &b in &cards {
                assert!(q_error(a, b) >= 1.0, "q({a}, {b}) below 1");
            }
        }
    }
}
