//! The Q-error metric and the re-optimization trigger threshold.

/// The Q-error threshold the paper settles on after the Figure-7 sweep: re-optimize a
/// join whose true cardinality is more than 32× larger or smaller than estimated.
pub const DEFAULT_REOPT_THRESHOLD: f64 = 32.0;

/// The Q-error of an estimate: `max(estimated/actual, actual/estimated)`, with both
/// sides clamped to at least one row. A perfect estimate has Q-error 1; the metric is
/// symmetric in over- and under-estimation (Moerkotte, Neumann & Steidl, reference [36]
/// of the paper).
pub fn q_error(estimated: f64, actual: f64) -> f64 {
    let estimated = estimated.max(1.0);
    let actual = actual.max(1.0);
    (estimated / actual).max(actual / estimated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_estimate_has_q_error_one() {
        assert_eq!(q_error(100.0, 100.0), 1.0);
        assert_eq!(q_error(0.0, 0.0), 1.0);
    }

    #[test]
    fn symmetric_in_direction() {
        assert_eq!(q_error(10.0, 1000.0), 100.0);
        assert_eq!(q_error(1000.0, 10.0), 100.0);
    }

    #[test]
    fn clamps_small_values() {
        assert_eq!(q_error(0.001, 50.0), 50.0);
        assert_eq!(q_error(50.0, 0.0), 50.0);
    }

    #[test]
    fn default_threshold_matches_paper() {
        assert_eq!(DEFAULT_REOPT_THRESHOLD, 32.0);
    }
}
