//! The engine façade: storage + catalog + optimizer + executor behind a SQL interface.

use crate::error::DbError;
use crate::session::{ServerState, Session};
use reopt_catalog::Catalog;
use reopt_executor::{
    default_columnar, default_thread_count, Executor, MemoryGovernor, QueryMetrics,
};
use reopt_planner::{
    explain_plan, CardinalityOverrides, EstimationLog, Optimizer, OptimizerConfig, PhysicalPlan,
    PlannedQuery, QuerySpec,
};
use reopt_sql::{parse_sql, parse_statements, SelectStatement, Statement};
use reopt_storage::{Column, IndexKind, Row, Schema, Storage, Table};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The result of executing one statement.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Output rows (empty for DDL statements).
    pub rows: Vec<Row>,
    /// Output schema.
    pub schema: Schema,
    /// Time spent parsing, binding and optimizing.
    pub planning_time: Duration,
    /// Time spent executing operators.
    pub execution_time: Duration,
    /// Per-operator metrics (EXPLAIN ANALYZE view), when a plan was executed.
    pub metrics: Option<QueryMetrics>,
    /// Peak rows buffered by pipeline breakers during execution (0 when nothing ran).
    pub peak_buffered_rows: u64,
    /// Peak bytes buffered at the same accounting points as
    /// [`QueryOutput::peak_buffered_rows`] ([`reopt_storage::Value::width`] per
    /// buffered value, 8 bytes per buffered index-scan row id).
    pub peak_buffered_bytes: u64,
    /// The executed physical plan, when one was produced.
    pub plan: Option<PhysicalPlan>,
    /// The bound query, when one was produced.
    pub spec: Option<QuerySpec>,
    /// How many cardinality estimates the optimizer requested, by subset size.
    pub estimation_log: EstimationLog,
}

impl QueryOutput {
    /// Planning plus execution time.
    pub fn total_time(&self) -> Duration {
        self.planning_time + self.execution_time
    }

    /// Number of output rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }
}

/// The database engine: in-memory storage, ANALYZE statistics, the cost-based optimizer
/// (with its cardinality-injection hook) and the instrumented executor.
///
/// Cloning a database is a cheap copy-on-write snapshot: table chunks are
/// `Arc`-shared until written, the feedback cache stays shared (see
/// [`reopt_catalog::Catalog`]), and the [`ServerState`] handle stays shared — which
/// is exactly what [`Database::connect`] relies on to hand out [`Session`]s.
#[derive(Debug, Clone)]
pub struct Database {
    storage: Storage,
    catalog: Catalog,
    optimizer: Optimizer,
    overrides: CardinalityOverrides,
    /// Worker-pool size for execution; `None` defers to
    /// [`reopt_executor::default_thread_count`] (`REOPT_THREADS` or the machine's
    /// available parallelism).
    threads: Option<usize>,
    /// Whether scans use the vectorized columnar path; `None` defers to
    /// [`reopt_executor::default_columnar`] (the `REOPT_COLUMNAR` kill switch).
    columnar: Option<bool>,
    /// Executor row-batch size; `None` defers to
    /// [`reopt_executor::DEFAULT_BATCH_SIZE`]. Morsels are a fixed multiple of the
    /// batch size, so shrinking this lets small test datasets split into enough
    /// morsels to exercise the shared worker pool.
    batch_size: Option<usize>,
    /// Scheduling priority this database's queries register with on the shared
    /// worker pool.
    priority: u8,
    /// Admission control and session ids, shared across every clone/session.
    server: Arc<ServerState>,
    /// The out-of-core memory budget breaker sinks reserve against, shared across
    /// every clone/session exactly like the admission semaphore (see
    /// [`reopt_executor::MemoryGovernor`]). Initialised from `REOPT_MEM_BUDGET`;
    /// unlimited by default.
    governor: Arc<MemoryGovernor>,
}

impl Default for Database {
    fn default() -> Self {
        Self::new()
    }
}

impl Database {
    /// A database with the default optimizer configuration.
    pub fn new() -> Self {
        Self::with_config(OptimizerConfig::default())
    }

    /// A database with a custom optimizer configuration.
    pub fn with_config(config: OptimizerConfig) -> Self {
        Self {
            storage: Storage::new(),
            catalog: Catalog::new(),
            optimizer: Optimizer::new(config),
            overrides: CardinalityOverrides::new(),
            threads: None,
            columnar: None,
            batch_size: None,
            priority: reopt_executor::DEFAULT_PRIORITY,
            server: Arc::new(ServerState::new()),
            governor: MemoryGovernor::from_env(),
        }
    }

    /// Replace the optimizer configuration (access-path and join-algorithm
    /// toggles) at runtime. Harnesses use this to steer a phase onto a specific
    /// plan family — e.g. disabling index-NL joins so every join carries a hash
    /// build — without rebuilding the database.
    pub fn set_optimizer_config(&mut self, config: OptimizerConfig) {
        self.optimizer = Optimizer::new(config);
    }

    /// Open a [`Session`]: a copy-on-write snapshot of this database sharing its
    /// admission semaphore and feedback cache. Each client thread gets its own
    /// session; their queries multiplex over the process-wide worker pool.
    pub fn connect(&self) -> Session {
        Session::new(self.clone(), Arc::clone(&self.server))
    }

    /// The shared server state (admission counters, session ids).
    pub fn server(&self) -> &Arc<ServerState> {
        &self.server
    }

    /// Change the admission cap inside the shared [`ServerState`]: every session
    /// connected to this database — before or after this call — enforces the new
    /// cap against the same inflight counter. Test/benchmark hook; production
    /// configuration is `REOPT_MAX_INFLIGHT`.
    pub fn set_max_inflight(&mut self, max_inflight: usize) {
        self.server.set_max_inflight(max_inflight);
    }

    /// The shared memory governor breaker sinks reserve against (out-of-core
    /// execution's byte budget).
    pub fn governor(&self) -> &Arc<MemoryGovernor> {
        &self.governor
    }

    /// Change the memory budget inside the shared governor (`None` = unlimited):
    /// every session connected to this database — before or after this call —
    /// reserves against the same counters, exactly like
    /// [`Database::set_max_inflight`]. Test/benchmark hook; production
    /// configuration is `REOPT_MEM_BUDGET`.
    pub fn set_mem_budget(&mut self, budget: Option<u64>) {
        self.governor.set_budget(budget);
    }

    /// The current memory budget in bytes, or `None` when unlimited.
    pub fn mem_budget(&self) -> Option<u64> {
        self.governor.budget()
    }

    /// The scheduling priority queries register with on the shared worker pool.
    pub fn priority(&self) -> u8 {
        self.priority
    }

    /// Set the scheduling priority for subsequent queries (higher runs first,
    /// equal priorities round-robin at morsel granularity).
    pub fn set_priority(&mut self, priority: u8) {
        self.priority = priority;
    }

    /// Pin the executor worker-pool size for every statement this database runs
    /// (`1` = always the single-threaded engine). `None` restores the default:
    /// `REOPT_THREADS` or the machine's available parallelism.
    pub fn set_threads(&mut self, threads: Option<usize>) {
        self.threads = threads.map(|t| t.max(1));
    }

    /// The executor worker-pool size every statement runs with.
    pub fn threads(&self) -> usize {
        self.threads.unwrap_or_else(default_thread_count)
    }

    /// Pin whether scans use the vectorized columnar path (`false` = always decode
    /// row-wise at the scan, the pre-columnar engine). `None` restores the default:
    /// `REOPT_COLUMNAR` (any value but `"0"` enables it).
    pub fn set_columnar(&mut self, columnar: Option<bool>) {
        self.columnar = columnar;
    }

    /// Whether scans use the vectorized columnar path.
    pub fn columnar(&self) -> bool {
        self.columnar.unwrap_or_else(default_columnar)
    }

    /// Pin the executor row-batch size (`None` restores
    /// [`reopt_executor::DEFAULT_BATCH_SIZE`]). Morsel size is a fixed multiple of
    /// the batch size, so tests and benchmarks shrink this to make small datasets
    /// split into enough morsels for real pool parallelism.
    pub fn set_batch_size(&mut self, batch_size: Option<usize>) {
        self.batch_size = batch_size.map(|b| b.max(1));
    }

    /// The executor row-batch size every statement runs with.
    pub fn batch_size(&self) -> usize {
        self.batch_size.unwrap_or(reopt_executor::DEFAULT_BATCH_SIZE)
    }

    /// Shared access to storage.
    pub fn storage(&self) -> &Storage {
        &self.storage
    }

    /// Mutable access to storage (used by data generators to bulk-load tables).
    pub fn storage_mut(&mut self) -> &mut Storage {
        &mut self.storage
    }

    /// Shared access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Mutable access to the catalog.
    pub fn catalog_mut(&mut self) -> &mut Catalog {
        &mut self.catalog
    }

    /// The session-level cardinality overrides consulted by every subsequent `plan` /
    /// `execute` call. The perfect-(n) oracle and the selective-improvement simulator
    /// write into this table.
    pub fn overrides(&self) -> &CardinalityOverrides {
        &self.overrides
    }

    /// Mutable access to the session-level overrides.
    pub fn overrides_mut(&mut self) -> &mut CardinalityOverrides {
        &mut self.overrides
    }

    /// Replace the session-level overrides.
    pub fn set_overrides(&mut self, overrides: CardinalityOverrides) {
        self.overrides = overrides;
    }

    /// Remove all session-level overrides (back to the default estimator).
    pub fn clear_overrides(&mut self) {
        self.overrides = CardinalityOverrides::new();
    }

    /// Register a table.
    pub fn create_table(&mut self, table: Table) -> Result<(), DbError> {
        self.storage.create_table(table)?;
        Ok(())
    }

    /// Create an index on an existing table.
    pub fn create_index(
        &mut self,
        table: &str,
        column: &str,
        kind: IndexKind,
    ) -> Result<(), DbError> {
        let index_name = format!("{table}_{column}_{:?}", kind).to_ascii_lowercase();
        self.storage
            .table_mut(table)?
            .create_index(index_name, column, kind)?;
        Ok(())
    }

    /// Run ANALYZE over one table.
    pub fn analyze(&mut self, table: &str) -> Result<(), DbError> {
        self.catalog.analyze(&self.storage, table)?;
        Ok(())
    }

    /// Run ANALYZE over every table.
    pub fn analyze_all(&mut self) -> Result<(), DbError> {
        self.catalog.analyze_all(&self.storage)?;
        Ok(())
    }

    /// Plan a SELECT statement, returning the plan and the planning time.
    pub fn plan_select(
        &self,
        statement: &SelectStatement,
    ) -> Result<(PlannedQuery, Duration), DbError> {
        let start = Instant::now();
        let planned = self.optimizer.plan_select(
            statement,
            &self.storage,
            &self.catalog,
            &self.overrides,
        )?;
        Ok((planned, start.elapsed()))
    }

    /// Plan a SELECT with explicit extra overrides merged on top of the session ones.
    pub fn plan_select_with_overrides(
        &self,
        statement: &SelectStatement,
        extra: &CardinalityOverrides,
    ) -> Result<(PlannedQuery, Duration), DbError> {
        let mut merged = self.overrides.clone();
        merged.merge(extra);
        let start = Instant::now();
        let planned =
            self.optimizer
                .plan_select(statement, &self.storage, &self.catalog, &merged)?;
        Ok((planned, start.elapsed()))
    }

    /// Plan an already-bound query (e.g. a collapsed spec produced by
    /// [`reopt_planner::collapse_spec`]) with extra overrides merged on top of the
    /// session ones. Used by the mid-query re-optimization controller, whose rewritten
    /// queries exist only as specs — their virtual leaf tables have no SQL form.
    pub fn plan_bound_with_overrides(
        &self,
        spec: QuerySpec,
        extra: &CardinalityOverrides,
    ) -> Result<(PlannedQuery, Duration), DbError> {
        let mut merged = self.overrides.clone();
        merged.merge(extra);
        let start = Instant::now();
        let planned = self
            .optimizer
            .plan_spec(spec, &self.storage, &self.catalog, &merged)?;
        Ok((planned, start.elapsed()))
    }

    /// Register already-materialized rows as a temporary table and ANALYZE it, so the
    /// next planning round sees its true cardinality. The schema may carry qualified
    /// column names (the mid-query controller registers breaker state whose columns
    /// keep their original relation aliases). Dropped by
    /// [`Database::drop_temporary_tables`] like every other temporary table.
    pub fn register_materialized_table(
        &mut self,
        name: &str,
        schema: Schema,
        rows: Vec<Row>,
    ) -> Result<(), DbError> {
        let mut table = Table::with_rows(name, schema, rows);
        table.set_temporary(true);
        self.storage.create_or_replace_table(table);
        self.catalog.analyze(&self.storage, name)?;
        Ok(())
    }

    /// Append rows to an existing table. Cached cardinality feedback that references
    /// the table is invalidated immediately — the observed counts no longer describe
    /// the data — while statistics stay as they are until the next ANALYZE (matching
    /// how a real system's stats go stale between ANALYZE runs).
    pub fn ingest_rows(&mut self, table: &str, rows: Vec<Row>) -> Result<(), DbError> {
        let target = self.storage.table_mut(table)?;
        for row in rows {
            target.push_row(row)?;
        }
        self.catalog.feedback_mut().invalidate_table(table);
        Ok(())
    }

    /// Parse and execute a single SQL statement.
    ///
    /// # Examples
    ///
    /// ```
    /// use reopt_core::Database;
    /// use reopt_storage::{Column, DataType, Row, Schema, Table, Value};
    ///
    /// let mut db = Database::new();
    /// let mut movies = Table::new(
    ///     "movies",
    ///     Schema::new(vec![
    ///         Column::not_null("id", DataType::Int),
    ///         Column::new("year", DataType::Int),
    ///     ]),
    /// );
    /// for i in 0..10i64 {
    ///     movies
    ///         .push_row(Row::from_values(vec![i.into(), (2000 + i).into()]))
    ///         .unwrap();
    /// }
    /// db.create_table(movies).unwrap();
    /// db.analyze_all().unwrap();
    ///
    /// let output = db
    ///     .execute("SELECT count(*) AS c FROM movies AS m WHERE m.year >= 2005")
    ///     .unwrap();
    /// assert_eq!(output.rows[0].value(0), &Value::Int(5));
    /// assert!(output.metrics.is_some()); // EXPLAIN ANALYZE style metrics come free
    /// ```
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput, DbError> {
        let statement = parse_sql(sql)?;
        self.execute_statement(&statement)
    }

    /// Parse and execute a semicolon-separated script, returning the output of every
    /// statement (the paper's re-optimized queries are exactly such scripts: a series of
    /// `CREATE TEMP TABLE` statements followed by a final `SELECT`).
    pub fn execute_script(&mut self, sql: &str) -> Result<Vec<QueryOutput>, DbError> {
        let statements = parse_statements(sql)?;
        statements
            .iter()
            .map(|statement| self.execute_statement(statement))
            .collect()
    }

    /// Execute an already-parsed statement.
    pub fn execute_statement(&mut self, statement: &Statement) -> Result<QueryOutput, DbError> {
        match statement {
            Statement::Select(select) => self.execute_select(select),
            Statement::CreateTableAs {
                name,
                temporary,
                query,
            } => self.create_table_as(name, *temporary, query),
            Statement::Explain {
                analyze,
                statement,
            } => {
                let select = statement
                    .query()
                    .ok_or_else(|| DbError::Reoptimization("EXPLAIN needs a query".into()))?;
                let text = if *analyze {
                    self.explain_analyze_select(select)?
                } else {
                    self.explain_select(select)?
                };
                // EXPLAIN output is returned as a single text column.
                let schema = Schema::new(vec![Column::new("query plan", reopt_storage::DataType::Text)]);
                let rows = text
                    .lines()
                    .map(|line| Row::from_values(vec![line.into()]))
                    .collect();
                Ok(QueryOutput {
                    rows,
                    schema,
                    planning_time: Duration::ZERO,
                    execution_time: Duration::ZERO,
                    metrics: None,
                    peak_buffered_rows: 0,
                    peak_buffered_bytes: 0,
                    plan: None,
                    spec: None,
                    estimation_log: EstimationLog::default(),
                })
            }
        }
    }

    /// Execute a SELECT statement.
    pub fn execute_select(&mut self, select: &SelectStatement) -> Result<QueryOutput, DbError> {
        let (planned, planning_time) = self.plan_select(select)?;
        let result = Executor::with_batch_size(&self.storage, self.batch_size())
            .with_threads(self.threads())
            .with_columnar(self.columnar())
            .with_priority(self.priority)
            .with_governor(Arc::clone(&self.governor))
            .execute(&planned.plan)?;
        Ok(QueryOutput {
            rows: result.rows,
            schema: result.schema,
            planning_time,
            execution_time: result.metrics.execution_time,
            metrics: Some(result.metrics),
            peak_buffered_rows: result.peak_buffered_rows,
            peak_buffered_bytes: result.peak_buffered_bytes,
            plan: Some(planned.plan),
            spec: Some(planned.spec),
            estimation_log: planned.estimation_log,
        })
    }

    /// `CREATE [TEMP] TABLE name AS SELECT ...`: execute the query and materialize its
    /// result as a new table, then ANALYZE it so subsequent planning sees accurate
    /// statistics (the whole point of the paper's materialize-and-replan scheme).
    pub fn create_table_as(
        &mut self,
        name: &str,
        temporary: bool,
        query: &SelectStatement,
    ) -> Result<QueryOutput, DbError> {
        let mut output = self.execute_select(query)?;
        let schema = materialized_schema(&output.schema);
        let mut table = Table::new(name, schema);
        table.set_temporary(temporary);
        for row in std::mem::take(&mut output.rows) {
            table.push_row_unchecked(row);
        }
        self.storage.create_or_replace_table(table);
        self.catalog.analyze(&self.storage, name)?;
        Ok(QueryOutput {
            rows: Vec::new(),
            ..output
        })
    }

    /// EXPLAIN: the chosen plan with estimated rows and costs.
    pub fn explain(&self, sql: &str) -> Result<String, DbError> {
        let statement = parse_sql(sql)?;
        let select = statement
            .query()
            .ok_or_else(|| DbError::Reoptimization("EXPLAIN needs a query".into()))?;
        self.explain_select(select)
    }

    fn explain_select(&self, select: &SelectStatement) -> Result<String, DbError> {
        let (planned, _) = self.plan_select(select)?;
        Ok(explain_plan(&planned.plan))
    }

    /// EXPLAIN ANALYZE: execute the query and render per-operator estimated vs. actual
    /// cardinalities — the view the paper's simulation consumes.
    pub fn explain_analyze(&mut self, sql: &str) -> Result<String, DbError> {
        let statement = parse_sql(sql)?;
        let select = statement
            .query()
            .ok_or_else(|| DbError::Reoptimization("EXPLAIN needs a query".into()))?;
        self.explain_analyze_select(select)
    }

    fn explain_analyze_select(&mut self, select: &SelectStatement) -> Result<String, DbError> {
        let output = self.execute_select(select)?;
        let metrics = output.metrics.expect("select produces metrics");
        let mut text = metrics.root.render();
        // Spill totals render only when a finite budget actually forced a breaker
        // out of core; the unlimited default stays byte-identical.
        let (spilled_bytes, spill_partitions) = metrics.root.total_spilled();
        if spilled_bytes > 0 || spill_partitions > 0 {
            text.push_str(&format!(
                "Spilled: {spilled_bytes} bytes in {spill_partitions} partitions\n"
            ));
        }
        // Which engine actually ran the query — a multi-threaded session that fell
        // back to the single-threaded engine says so (and why) instead of hiding it.
        text.push_str(&format!("Engine: {}\n", metrics.engine_label()));
        text.push_str(&format!(
            "Peak Buffered: {} rows ({} bytes)\nPlanning Time: {:.3} ms\nExecution Time: {:.3} ms\n",
            output.peak_buffered_rows,
            output.peak_buffered_bytes,
            output.planning_time.as_secs_f64() * 1e3,
            output.execution_time.as_secs_f64() * 1e3
        ));
        Ok(text)
    }

    /// Run a query under an arbitrary re-optimization policy: the new entry point of
    /// the unified control plane. Equivalent to
    /// [`execute_with_policy`](crate::reopt::execute_with_policy); the paper's three
    /// modes remain reachable through
    /// [`execute_with_reoptimization`](crate::execute_with_reoptimization) /
    /// [`ReoptConfig::policy`](crate::ReoptConfig::policy). See
    /// [`crate::policy`] for the decision semantics and a minimal policy
    /// implementation.
    pub fn execute_with_policy(
        &mut self,
        sql: &str,
        policy: &mut dyn crate::policy::ReoptPolicy,
    ) -> Result<crate::reopt::ReoptReport, DbError> {
        crate::reopt::execute_with_policy(self, sql, policy)
    }

    /// Drop every temporary table (created by re-optimization) and its statistics.
    pub fn drop_temporary_tables(&mut self) {
        for name in self.storage.drop_temporary_tables() {
            self.catalog.remove_statistics(&name);
        }
    }

    /// Drop specific tables (and their statistics), ignoring names that no longer
    /// exist. The policy driver uses this to clean up exactly the temporary tables
    /// *it* created, leaving any user-created session temp tables alone.
    pub fn drop_tables(&mut self, names: &[String]) {
        for name in names {
            if self.storage.drop_table(name).is_ok() {
                self.catalog.remove_statistics(name);
            }
        }
    }
}

/// Build the schema of a materialized table from a query output schema: qualifiers are
/// folded into the column names where needed so every column name is unique and
/// unqualified.
fn materialized_schema(output: &Schema) -> Schema {
    let mut names = std::collections::HashSet::new();
    let mut columns = Vec::with_capacity(output.len());
    for column in output.columns() {
        let mut name = column.name().to_string();
        if !names.insert(name.clone()) {
            name = match column.qualifier() {
                Some(qualifier) => format!("{qualifier}_{}", column.name()),
                None => format!("{}_{}", column.name(), names.len()),
            };
            names.insert(name.clone());
        }
        columns.push(Column::new(name, column.data_type()));
    }
    Schema::new(columns)
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use reopt_storage::{DataType, Value};

    /// A tiny movies/keywords database used across the core tests.
    pub(crate) fn test_database() -> Database {
        test_database_with_config(OptimizerConfig::default())
    }

    /// The same database with a custom optimizer configuration (used by tests that
    /// need a deterministic plan shape, e.g. hash joins only).
    pub(crate) fn test_database_with_config(config: OptimizerConfig) -> Database {
        let mut db = Database::with_config(config);

        let mut title = Table::new(
            "title",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("title", DataType::Text),
                Column::new("production_year", DataType::Int),
            ]),
        );
        for i in 0..300i64 {
            title
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("movie {i:04}")),
                    Value::Int(1980 + (i % 40)),
                ]))
                .unwrap();
        }

        let mut keyword = Table::new(
            "keyword",
            Schema::new(vec![
                Column::not_null("id", DataType::Int),
                Column::new("keyword", DataType::Text),
            ]),
        );
        for i in 0..50i64 {
            keyword
                .push_row(Row::from_values(vec![
                    Value::Int(i),
                    Value::from(format!("kw{i}")),
                ]))
                .unwrap();
        }

        let mut movie_keyword = Table::new(
            "movie_keyword",
            Schema::new(vec![
                Column::not_null("movie_id", DataType::Int),
                Column::not_null("keyword_id", DataType::Int),
            ]),
        );
        // Keyword 0 is attached to every movie (skew); other keywords are sparse.
        for i in 0..300i64 {
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int(0)]))
                .unwrap();
            movie_keyword
                .push_row(Row::from_values(vec![Value::Int(i), Value::Int(1 + (i % 49))]))
                .unwrap();
        }

        db.create_table(title).unwrap();
        db.create_table(keyword).unwrap();
        db.create_table(movie_keyword).unwrap();
        db.create_index("title", "id", IndexKind::BTree).unwrap();
        db.create_index("movie_keyword", "movie_id", IndexKind::Hash)
            .unwrap();
        db.create_index("movie_keyword", "keyword_id", IndexKind::Hash)
            .unwrap();
        db.create_index("keyword", "id", IndexKind::Hash).unwrap();
        db.analyze_all().unwrap();
        db
    }

    #[test]
    fn execute_select_returns_rows_and_timings() {
        let mut db = test_database();
        let output = db
            .execute("SELECT count(*) AS c FROM title AS t WHERE t.production_year >= 2000")
            .unwrap();
        assert_eq!(output.row_count(), 1);
        // Years 2000..=2019 → i%40 in 20..40 → 20 values, 7 or 8 movies each.
        let count = output.rows[0].value(0).as_int().unwrap();
        assert!(count > 100 && count < 200, "count {count}");
        assert!(output.plan.is_some());
        assert!(output.metrics.is_some());
        assert!(output.total_time() >= output.execution_time);
    }

    #[test]
    fn execute_join_query() {
        let mut db = test_database();
        let output = db
            .execute(
                "SELECT count(*) AS c
                 FROM title AS t, movie_keyword AS mk, keyword AS k
                 WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'kw0'",
            )
            .unwrap();
        assert_eq!(output.rows[0].value(0), &Value::Int(300));
        assert!(output.estimation_log.total() > 3);
    }

    #[test]
    fn create_temp_table_as_and_query_it() {
        let mut db = test_database();
        let outputs = db
            .execute_script(
                "CREATE TEMP TABLE temp1 AS
                   SELECT mk.movie_id AS mk_movie_id
                   FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0';
                 SELECT count(*) AS c
                   FROM title AS t, temp1
                   WHERE t.id = temp1.mk_movie_id;",
            )
            .unwrap();
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[1].rows[0].value(0), &Value::Int(300));
        // Temporary table exists and has statistics until dropped.
        assert!(db.storage().contains_table("temp1"));
        assert!(db.catalog().has_statistics("temp1"));
        db.drop_temporary_tables();
        assert!(!db.storage().contains_table("temp1"));
        assert!(!db.catalog().has_statistics("temp1"));
    }

    #[test]
    fn explain_and_explain_analyze() {
        let mut db = test_database();
        let sql = "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";
        let plain = db.explain(sql).unwrap();
        assert!(plain.contains("Join"));
        assert!(plain.contains("rows="));
        let analyzed = db.explain_analyze(sql).unwrap();
        assert!(analyzed.contains("actual rows=300"));
        assert!(analyzed.contains("Execution Time"));
        // The columnar engine labels every scan's encoding and the buffered-state
        // line carries the byte high-water mark alongside the row count.
        assert!(analyzed.contains("encoding="), "{analyzed}");
        assert!(analyzed.contains("Peak Buffered:"), "{analyzed}");
        assert!(analyzed.contains("bytes)"), "{analyzed}");
        // EXPLAIN through the statement API returns one row per line.
        let output = db.execute(&format!("EXPLAIN {sql}")).unwrap();
        assert!(output.row_count() > 1);
    }

    #[test]
    fn columnar_kill_switch_matches_and_reports_encoding() {
        let mut db = test_database();
        let sql = "SELECT count(*) AS c
                   FROM movie_keyword AS mk, keyword AS k
                   WHERE mk.keyword_id = k.id AND k.keyword = 'kw0'";

        db.set_columnar(Some(true));
        let columnar = db.execute(sql).unwrap();
        assert!(
            columnar.peak_buffered_bytes > 0,
            "breakers must report buffered bytes"
        );
        let analyzed = db.explain_analyze(sql).unwrap();
        // `k.keyword = 'kw0'` vectorizes over the dictionary codes.
        assert!(analyzed.contains("encoding=dictionary"), "{analyzed}");

        db.set_columnar(Some(false));
        assert!(!db.columnar());
        let row_engine = db.execute(sql).unwrap();
        let analyzed = db.explain_analyze(sql).unwrap();
        assert!(analyzed.contains("encoding=row"), "{analyzed}");
        db.set_columnar(None);

        assert_eq!(columnar.rows, row_engine.rows);
        // Identical buffered state: both engines charge the same breakers.
        assert_eq!(columnar.peak_buffered_rows, row_engine.peak_buffered_rows);
        assert_eq!(columnar.peak_buffered_bytes, row_engine.peak_buffered_bytes);
    }

    #[test]
    fn overrides_are_session_scoped() {
        let mut db = test_database();
        let statement = parse_sql(
            "SELECT count(*) AS c FROM movie_keyword AS mk, keyword AS k WHERE mk.keyword_id = k.id",
        )
        .unwrap();
        let select = statement.query().unwrap().clone();
        let (default_plan, _) = db.plan_select(&select).unwrap();
        let mut overrides = CardinalityOverrides::new();
        overrides.set(reopt_planner::RelSet::from_indexes([0, 1]), 1.0);
        db.set_overrides(overrides);
        let (overridden_plan, _) = db.plan_select(&select).unwrap();
        assert!(overridden_plan.plan.children[0].estimated_rows < default_plan.plan.children[0].estimated_rows);
        db.clear_overrides();
        assert!(db.overrides().is_empty());
    }

    #[test]
    fn errors_are_propagated() {
        let mut db = test_database();
        assert!(matches!(db.execute("SELEKT 1"), Err(DbError::Parse(_))));
        assert!(matches!(
            db.execute("SELECT * FROM missing AS m"),
            Err(DbError::Plan(_))
        ));
        assert!(db.create_index("missing", "id", IndexKind::Hash).is_err());
        assert!(db.analyze("missing").is_err());
    }

    #[test]
    fn materialized_schema_deduplicates_names() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).with_qualifier("a"),
            Column::new("id", DataType::Int).with_qualifier("b"),
            Column::new("name", DataType::Text),
        ]);
        let result = materialized_schema(&schema);
        assert_eq!(result.column(0).unwrap().name(), "id");
        assert_eq!(result.column(1).unwrap().name(), "b_id");
        assert_eq!(result.column(2).unwrap().name(), "name");
        assert!(result.column(0).unwrap().qualifier().is_none());
    }
}
