//! Multi-query sessions over one database.
//!
//! The paper evaluates re-optimization one query at a time; the north star here is a
//! server shape: many clients issuing JOB-style queries concurrently against one
//! in-memory database, all multiplexed over the process-wide worker pool
//! ([`reopt_executor::WorkerPool`]). The seam between the two worlds is the
//! [`Session`]:
//!
//! * [`Database::connect`] hands out a session holding a **copy-on-write snapshot**
//!   of the database (tables are `Arc`-shared chunks, so the clone is cheap).
//!   Temporary tables a re-optimizing query materializes mid-flight are therefore
//!   session-local — one session's re-planning never perturbs another's catalog —
//!   while the heavy base-table chunks exist once.
//! * The cross-query [`FeedbackCache`](reopt_catalog::FeedbackCache) is the
//!   deliberate exception: its clone is a handle to a shared store, so true
//!   cardinalities observed by any session seed every other session's next
//!   planning pass.
//! * Admission control: a counting semaphore caps how many queries run at once
//!   (`REOPT_MAX_INFLIGHT`, default [`DEFAULT_MAX_INFLIGHT`]); excess callers block
//!   in [`Session::execute`] until a slot frees. Under the cap, fairness between
//!   running queries is the worker pool's job (per-task priority + round-robin at
//!   morsel granularity), not admission's.
//! * Per-session **priority** ([`Session::set_priority`]) flows through the
//!   executor into the pool's task registration, so a high-priority session's
//!   morsels are served before lower-priority ones while equal priorities share
//!   fairly.
//!
//! Suspension scoping comes free with this layering: a mid-query re-optimization
//! quiesces only the violating query's task queue (its chain jobs observe the
//! query-scoped flags in `executor::parallel`), so concurrent sessions keep
//! streaming morsels on the same workers throughout another session's re-planning.

use crate::database::{Database, QueryOutput};
use crate::error::DbError;
use crate::policy::ReoptPolicy;
use crate::reopt::ReoptReport;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Default cap on concurrently executing queries (overridden by
/// `REOPT_MAX_INFLIGHT`).
pub const DEFAULT_MAX_INFLIGHT: usize = 8;

/// State shared by every session connected to one database: the admission
/// semaphore and the session id counter.
#[derive(Debug)]
pub struct ServerState {
    /// Number of queries currently holding an admission slot.
    inflight: Mutex<usize>,
    /// Signalled whenever a slot frees (or the cap is raised).
    slot_freed: Condvar,
    /// Maximum concurrently executing queries. Mutable in place (under the
    /// admission lock) so every session sharing this state — connected before or
    /// after a change — enforces the same cap against the same counters.
    max_inflight: AtomicUsize,
    /// High-water mark of concurrently admitted queries (observability + tests).
    peak_inflight: AtomicU64,
    /// Total queries ever admitted.
    admitted_total: AtomicU64,
    /// Session id allocator.
    next_session: AtomicU64,
}

impl ServerState {
    pub(crate) fn new() -> Self {
        let max_inflight = std::env::var("REOPT_MAX_INFLIGHT")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .unwrap_or(DEFAULT_MAX_INFLIGHT)
            .max(1);
        Self::with_max_inflight(max_inflight)
    }

    pub(crate) fn with_max_inflight(max_inflight: usize) -> Self {
        Self {
            inflight: Mutex::new(0),
            slot_freed: Condvar::new(),
            max_inflight: AtomicUsize::new(max_inflight.max(1)),
            peak_inflight: AtomicU64::new(0),
            admitted_total: AtomicU64::new(0),
            next_session: AtomicU64::new(1),
        }
    }

    fn allocate_session_id(&self) -> u64 {
        self.next_session.fetch_add(1, Ordering::SeqCst)
    }

    /// Block until an admission slot is free, then claim it. The returned guard
    /// releases the slot (and wakes one waiter) on drop — including on panic or
    /// error paths, so a failed query can never leak its slot.
    fn admit(self: &Arc<Self>) -> AdmissionGuard {
        let mut inflight = self.inflight.lock().expect("admission lock");
        while *inflight >= self.max_inflight.load(Ordering::SeqCst) {
            inflight = self
                .slot_freed
                .wait(inflight)
                .expect("admission lock poisoned");
        }
        *inflight += 1;
        self.admitted_total.fetch_add(1, Ordering::SeqCst);
        self.peak_inflight
            .fetch_max(*inflight as u64, Ordering::SeqCst);
        drop(inflight);
        AdmissionGuard {
            server: Arc::clone(self),
        }
    }

    /// The admission cap.
    pub fn max_inflight(&self) -> usize {
        self.max_inflight.load(Ordering::SeqCst)
    }

    /// Change the admission cap in place. Every session sharing this state sees
    /// the new cap immediately; raising it wakes queued waiters. Taken under the
    /// admission lock so the change serializes with in-flight `admit` checks.
    pub(crate) fn set_max_inflight(&self, max_inflight: usize) {
        let _inflight = self.inflight.lock().expect("admission lock");
        self.max_inflight
            .store(max_inflight.max(1), Ordering::SeqCst);
        self.slot_freed.notify_all();
    }

    /// Queries currently holding an admission slot.
    pub fn inflight(&self) -> usize {
        *self.inflight.lock().expect("admission lock")
    }

    /// High-water mark of concurrently admitted queries.
    pub fn peak_inflight(&self) -> u64 {
        self.peak_inflight.load(Ordering::SeqCst)
    }

    /// Total queries ever admitted.
    pub fn admitted_total(&self) -> u64 {
        self.admitted_total.load(Ordering::SeqCst)
    }
}

/// RAII admission slot.
struct AdmissionGuard {
    server: Arc<ServerState>,
}

impl Drop for AdmissionGuard {
    fn drop(&mut self) {
        let mut inflight = self.server.inflight.lock().expect("admission lock");
        *inflight = inflight.saturating_sub(1);
        drop(inflight);
        self.server.slot_freed.notify_one();
    }
}

/// One client's connection to a [`Database`]: a copy-on-write snapshot of the
/// catalog and storage, a shared admission semaphore, and a scheduling priority.
///
/// Sessions are `Send`: create them on a coordinator thread and hand one to each
/// client thread. Every query a session executes registers as its own task on the
/// process-wide worker pool, so N sessions executing simultaneously interleave at
/// morsel granularity rather than queueing whole queries behind each other.
#[derive(Debug)]
pub struct Session {
    db: Database,
    server: Arc<ServerState>,
    id: u64,
}

impl Session {
    pub(crate) fn new(db: Database, server: Arc<ServerState>) -> Self {
        let id = server.allocate_session_id();
        Self { db, server, id }
    }

    /// This session's unique id (1-based, per database).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The scheduling priority this session's queries register with (higher runs
    /// first; equal priorities round-robin). Defaults to the executor default.
    pub fn priority(&self) -> u8 {
        self.db.priority()
    }

    /// Set the scheduling priority for subsequent queries.
    pub fn set_priority(&mut self, priority: u8) {
        self.db.set_priority(priority);
    }

    /// The shared server state (admission counters; useful for observability).
    pub fn server(&self) -> &Arc<ServerState> {
        &self.server
    }

    /// The session's database snapshot.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable access to the session's database snapshot (e.g. to pin thread count
    /// or columnar mode per session). Writes stay session-local except through the
    /// shared feedback cache.
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// Execute one SQL statement under admission control: blocks while
    /// `max_inflight` other queries are running, then runs on the shared pool.
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput, DbError> {
        let _slot = self.server.admit();
        self.db.execute(sql)
    }

    /// Execute a query under a re-optimization policy, with admission control. The
    /// whole policy-driven run (all re-planning rounds) holds one admission slot:
    /// rounds are one logical query, and releasing between rounds could deadlock a
    /// driver against its own temp-table state.
    pub fn execute_with_policy(
        &mut self,
        sql: &str,
        policy: &mut dyn ReoptPolicy,
    ) -> Result<ReoptReport, DbError> {
        let _slot = self.server.admit();
        self.db.execute_with_policy(sql, policy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::test_database;

    #[test]
    fn sessions_get_unique_ids_and_share_server_state() {
        let db = test_database();
        let a = db.connect();
        let b = db.connect();
        assert_ne!(a.id(), b.id());
        assert!(Arc::ptr_eq(a.server(), b.server()));
    }

    #[test]
    fn session_snapshot_isolates_writes_but_shares_feedback() {
        let db = test_database();
        let mut session = db.connect();
        // A temp table created inside the session is invisible to the database…
        session
            .execute(
                "CREATE TEMP TABLE session_local AS
                 SELECT k.id AS id FROM keyword AS k WHERE k.keyword = 'kw0'",
            )
            .unwrap();
        assert!(session.database().storage().contains_table("session_local"));
        assert!(!db.storage().contains_table("session_local"));
        // …but the feedback cache is one shared store.
        assert!(session
            .database()
            .catalog()
            .feedback()
            .shares_store_with(db.catalog().feedback()));
    }

    #[test]
    fn execute_runs_queries_and_counts_admissions() {
        let db = test_database();
        let mut session = db.connect();
        let out = session
            .execute("SELECT count(*) AS c FROM keyword AS k")
            .unwrap();
        assert_eq!(out.rows[0].value(0).as_int(), Some(50));
        assert_eq!(session.server().admitted_total(), 1);
        assert_eq!(session.server().inflight(), 0);
        assert!(session.server().peak_inflight() >= 1);
    }

    #[test]
    fn set_max_inflight_applies_to_already_connected_sessions() {
        let mut db = test_database();
        let session = db.connect();
        db.set_max_inflight(3);
        assert!(
            Arc::ptr_eq(session.server(), db.server()),
            "the cap change must not fork the server state"
        );
        assert_eq!(session.server().max_inflight(), 3);
    }

    #[test]
    fn admission_cap_blocks_excess_queries() {
        use std::sync::atomic::{AtomicBool, Ordering};
        use std::time::Duration;

        let mut db = test_database();
        db.set_max_inflight(1);
        let server = Arc::clone(db.server());
        let a = db.connect();
        let mut b = db.connect();

        // Hold the only slot on a thread, then verify a second query blocks until
        // the slot frees.
        let hold = Arc::new(AtomicBool::new(true));
        let hold_for_a = Arc::clone(&hold);
        let holder = std::thread::spawn(move || {
            let _slot = a.server.admit();
            while hold_for_a.load(Ordering::SeqCst) {
                std::thread::yield_now();
            }
        });
        // Wait for the holder to own the slot.
        while server.inflight() == 0 {
            std::thread::yield_now();
        }
        let blocked = std::thread::spawn(move || {
            b.execute("SELECT count(*) AS c FROM keyword AS k").unwrap()
        });
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(server.inflight(), 1, "second query must wait for the slot");
        hold.store(false, Ordering::SeqCst);
        holder.join().unwrap();
        let out = blocked.join().unwrap();
        assert_eq!(out.rows[0].value(0).as_int(), Some(50));
        assert!(server.peak_inflight() <= 1);
    }
}
