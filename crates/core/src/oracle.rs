//! The perfect-(n) cardinality oracle.
//!
//! Section III-B of the paper defines *perfect-(n)*: the cardinality estimator is given
//! an oracle for the true cardinality of every join of `n` tables or fewer (including
//! the filtered base tables for n ≥ 1); larger joins fall back to the default
//! estimation model. Perfect-(17) is fully perfect for JOB, perfect-(0) is the default
//! estimator.
//!
//! The oracle here computes true cardinalities by actually executing a `COUNT(*)`
//! sub-query for each connected relation subset (Cartesian-product subsets are never
//! estimated by the DP enumerator, so they are skipped, exactly like the paper's
//! PostgreSQL instrumentation which only overrides estimates the planner asks for).
//! Results are memoized per `(query key, subset)` so that sweeping n = 0 … 17 over the
//! same workload (Figures 2 and 8) pays the execution cost only once.

use crate::database::Database;
use crate::error::DbError;
use reopt_planner::{bind_select, CardinalityOverrides, JoinGraph, QuerySpec, RelSet};
use reopt_sql::{AggregateFunc, SelectExpr, SelectItem, SelectStatement, TableRef};
use std::collections::{HashMap, HashSet};

/// Enumerate every connected subset of the join graph with at most `max_size` relations.
pub fn connected_subsets_up_to(
    graph: &JoinGraph,
    relation_count: usize,
    max_size: usize,
) -> Vec<RelSet> {
    let mut seen: HashSet<RelSet> = HashSet::new();
    let mut result = Vec::new();
    let mut stack: Vec<RelSet> = Vec::new();
    for start in 0..relation_count {
        stack.push(RelSet::single(start));
    }
    while let Some(set) = stack.pop() {
        if !seen.insert(set) {
            continue;
        }
        result.push(set);
        if set.len() >= max_size {
            continue;
        }
        for neighbor in graph.neighbors(set).iter() {
            let extended = set.insert(neighbor);
            if !seen.contains(&extended) {
                stack.push(extended);
            }
        }
    }
    result.sort_by_key(|s| (s.len(), s.mask()));
    result
}

/// The perfect-(n) oracle with a cross-run memo of true cardinalities.
#[derive(Debug, Default, Clone)]
pub struct PerfectOracle {
    cache: HashMap<(String, u64), u64>,
}

impl PerfectOracle {
    /// An oracle with an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of memoized true cardinalities.
    pub fn cache_size(&self) -> usize {
        self.cache.len()
    }

    /// Build the override table for perfect-(`max_join_size`) on a query.
    ///
    /// `query_key` identifies the query in the memo (use a stable id such as "job-6d").
    /// With `max_join_size == 0` the result is empty (the default estimator).
    pub fn overrides_for(
        &mut self,
        db: &mut Database,
        select: &SelectStatement,
        max_join_size: usize,
        query_key: &str,
    ) -> Result<CardinalityOverrides, DbError> {
        let mut overrides = CardinalityOverrides::new();
        if max_join_size == 0 {
            return Ok(overrides);
        }
        let spec = bind_select(select, db.storage())?;
        let graph = JoinGraph::new(&spec);
        for subset in connected_subsets_up_to(&graph, spec.relation_count(), max_join_size) {
            let rows = self.true_cardinality(db, &spec, subset, query_key)?;
            overrides.set(subset, rows as f64);
        }
        Ok(overrides)
    }

    /// The true cardinality of the join of `subset` (with all applicable filter and join
    /// predicates), computed by executing a COUNT(*) sub-query and memoized.
    pub fn true_cardinality(
        &mut self,
        db: &mut Database,
        spec: &QuerySpec,
        subset: RelSet,
        query_key: &str,
    ) -> Result<u64, DbError> {
        let key = (query_key.to_string(), subset.mask());
        if let Some(&rows) = self.cache.get(&key) {
            return Ok(rows);
        }
        let count_query = counting_subquery(spec, subset);
        // Execute without the session overrides: the sub-query's relation indexes do
        // not correspond to the outer query's, so reusing them would only confuse the
        // sub-plan (never its result, but there is no reason to).
        let saved = db.overrides().clone();
        db.clear_overrides();
        let output = db.execute_select(&count_query);
        db.set_overrides(saved);
        let output = output?;
        let rows = output.rows[0].value(0).as_int().unwrap_or(0).max(0) as u64;
        self.cache.insert(key, rows);
        Ok(rows)
    }
}

/// Build `SELECT count(*) FROM <subset relations> WHERE <all predicates local to the
/// subset>` for a relation subset of a bound query.
pub fn counting_subquery(spec: &QuerySpec, subset: RelSet) -> SelectStatement {
    let from: Vec<TableRef> = subset
        .iter()
        .map(|rel| {
            let relation = &spec.relations[rel];
            TableRef::aliased(relation.table.clone(), relation.alias.clone())
        })
        .collect();

    let mut predicates = Vec::new();
    for rel in subset.iter() {
        predicates.extend(spec.local_predicates[rel].iter().cloned());
    }
    for edge in spec.edges_within(subset) {
        predicates.push(edge.to_expr());
    }
    for (pred_set, predicate) in &spec.complex_predicates {
        if pred_set.is_subset_of(subset) {
            predicates.push(predicate.clone());
        }
    }

    SelectStatement {
        items: vec![SelectItem {
            expr: SelectExpr::Aggregate {
                func: AggregateFunc::Count,
                arg: None,
            },
            alias: Some("true_rows".into()),
        }],
        from,
        where_clause: reopt_expr::conjoin(&predicates),
        group_by: vec![],
        order_by: vec![],
        limit: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::database::tests::test_database;
    use reopt_sql::parse_sql;

    const JOIN_SQL: &str = "SELECT count(*) AS c
        FROM title AS t, movie_keyword AS mk, keyword AS k
        WHERE t.id = mk.movie_id AND mk.keyword_id = k.id AND k.keyword = 'kw0'";

    #[test]
    fn connected_subsets_of_chain() {
        let mut db = test_database();
        let statement = parse_sql(JOIN_SQL).unwrap();
        let spec = bind_select(statement.query().unwrap(), db.storage()).unwrap();
        let graph = JoinGraph::new(&spec);
        // Chain t - mk - k: connected subsets are {t},{mk},{k},{t,mk},{mk,k},{t,mk,k}.
        let all = connected_subsets_up_to(&graph, 3, 3);
        assert_eq!(all.len(), 6);
        let pairs = connected_subsets_up_to(&graph, 3, 2);
        assert_eq!(pairs.len(), 5);
        let singles = connected_subsets_up_to(&graph, 3, 1);
        assert_eq!(singles.len(), 3);
        // Every enumerated subset is connected.
        for set in &all {
            assert!(graph.is_connected(*set));
        }
        // Keep the borrow checker honest about db being used later.
        let _ = db.storage_mut();
    }

    #[test]
    fn true_cardinalities_match_reality() {
        let mut db = test_database();
        let statement = parse_sql(JOIN_SQL).unwrap();
        let select = statement.query().unwrap().clone();
        let spec = bind_select(&select, db.storage()).unwrap();
        let mut oracle = PerfectOracle::new();

        let t = spec.relation_by_alias("t").unwrap();
        let mk = spec.relation_by_alias("mk").unwrap();
        let k = spec.relation_by_alias("k").unwrap();

        // Base tables: title has 300 rows, keyword filtered to kw0 has 1 row,
        // movie_keyword has 600 rows.
        assert_eq!(
            oracle
                .true_cardinality(&mut db, &spec, RelSet::single(t), "q")
                .unwrap(),
            300
        );
        assert_eq!(
            oracle
                .true_cardinality(&mut db, &spec, RelSet::single(k), "q")
                .unwrap(),
            1
        );
        assert_eq!(
            oracle
                .true_cardinality(&mut db, &spec, RelSet::single(mk), "q")
                .unwrap(),
            600
        );
        // mk ⋈ k (kw0 only) = 300; full join = 300.
        assert_eq!(
            oracle
                .true_cardinality(&mut db, &spec, RelSet::from_indexes([mk, k]), "q")
                .unwrap(),
            300
        );
        assert_eq!(
            oracle
                .true_cardinality(&mut db, &spec, spec.all_relations(), "q")
                .unwrap(),
            300
        );
        // The cache holds each computed subset exactly once.
        assert_eq!(oracle.cache_size(), 5);
        // Re-asking hits the cache (same count, no growth).
        oracle
            .true_cardinality(&mut db, &spec, spec.all_relations(), "q")
            .unwrap();
        assert_eq!(oracle.cache_size(), 5);
    }

    #[test]
    fn perfect_n_overrides_grow_with_n() {
        let mut db = test_database();
        let statement = parse_sql(JOIN_SQL).unwrap();
        let select = statement.query().unwrap().clone();
        let mut oracle = PerfectOracle::new();

        let none = oracle.overrides_for(&mut db, &select, 0, "q").unwrap();
        assert!(none.is_empty());
        let ones = oracle.overrides_for(&mut db, &select, 1, "q").unwrap();
        assert_eq!(ones.len(), 3);
        let pairs = oracle.overrides_for(&mut db, &select, 2, "q").unwrap();
        assert_eq!(pairs.len(), 5);
        let full = oracle.overrides_for(&mut db, &select, 17, "q").unwrap();
        assert_eq!(full.len(), 6);
    }

    #[test]
    fn perfect_estimates_improve_estimation_quality() {
        let mut db = test_database();
        let statement = parse_sql(JOIN_SQL).unwrap();
        let select = statement.query().unwrap().clone();

        // Default estimator: the skewed keyword 'kw0' join is underestimated.
        // (The top join's estimate is order-independent, so inspect children[0] of the
        // aggregate node.)
        let (default_planned, _) = db.plan_select(&select).unwrap();
        let default_top = default_planned.plan.children[0].estimated_rows;

        let mut oracle = PerfectOracle::new();
        let overrides = oracle.overrides_for(&mut db, &select, 17, "q").unwrap();
        db.set_overrides(overrides);
        let (perfect_planned, _) = db.plan_select(&select).unwrap();
        let perfect_top = perfect_planned
            .plan
            .children[0]
            .estimated_rows;
        // With the oracle the top join estimate equals the true cardinality (300).
        assert!((perfect_top - 300.0).abs() < 1.0, "estimate {perfect_top}");
        assert!(default_top < 300.0, "default should underestimate, got {default_top}");
    }

    #[test]
    fn counting_subquery_renders_valid_sql() {
        let mut db = test_database();
        let statement = parse_sql(JOIN_SQL).unwrap();
        let spec = bind_select(statement.query().unwrap(), db.storage()).unwrap();
        let subquery = counting_subquery(&spec, RelSet::from_indexes([1, 2]));
        let sql = subquery.to_sql();
        // It must reparse and execute.
        let reparsed = parse_sql(&sql).unwrap();
        let output = db.execute_statement(&reparsed).unwrap();
        assert_eq!(output.rows.len(), 1);
    }
}
