//! Per-query and per-workload run records shared by the experiment harnesses, plus the
//! human-readable rendering of a [`ReoptReport`].

use crate::policy::ReoptTrigger;
use crate::reopt::{ReoptReport, ReoptRoundKind};
use std::time::Duration;

impl ReoptReport {
    /// Render the report as human-readable text, tagging every round with its kind
    /// and trigger so that mid-query rounds (pipeline suspended and resumed, state
    /// reused) are distinguishable from restart rounds (query re-executed from
    /// scratch), and breaker-triggered rounds from streaming-progress ones.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (idx, round) in self.rounds.iter().enumerate() {
            let tag = if round.trigger == ReoptTrigger::DetectionRun {
                round.kind.to_string()
            } else {
                format!("{} via {}", round.kind, round.trigger)
            };
            out.push_str(&format!(
                "round {} [{tag}]  {}  estimated={:.0} actual={} q-error={:.1}",
                idx + 1,
                round.materialized_aliases.join(" \u{22c8} "),
                round.estimated_rows,
                round.actual_rows,
                round.q_error,
            ));
            match (&round.temp_table, round.kind) {
                (Some(name), ReoptRoundKind::MidQuery) => {
                    let reused = round.reused_rows.unwrap_or(0);
                    out.push_str(&format!("  -> reused {reused} buffered rows as {name}"));
                }
                (Some(name), ReoptRoundKind::Restart) => {
                    out.push_str(&format!("  -> materialized as {name}"));
                }
                (None, _) => out.push_str(&format!(
                    "  -> injected {} cardinalit{}",
                    round.corrections,
                    if round.corrections == 1 { "y" } else { "ies" }
                )),
            }
            out.push('\n');
        }
        if self.rounds.is_empty() {
            out.push_str("no re-optimization rounds\n");
        }
        out.push_str(&format!(
            "policy {} ({} thread{}): planning {:.3} ms, execution {:.3} ms, detection {:.3} ms, peak buffered rows {} ({} bytes)\n",
            self.policy,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            self.planning_time.as_secs_f64() * 1e3,
            self.execution_time.as_secs_f64() * 1e3,
            self.detection_time.as_secs_f64() * 1e3,
            self.peak_buffered_rows,
            self.peak_buffered_bytes,
        ));
        // Which engine produced the final run — a threads > 1 configuration that
        // degraded to the single-threaded engine reports the fallback reason.
        if let Some(metrics) = &self.final_metrics {
            out.push_str(&format!("final run: {}\n", metrics.engine_label()));
        }
        // Spill accounting renders only when something actually spilled, keeping
        // unlimited-budget reports byte-identical to pre-out-of-core builds.
        if self.spilled_bytes > 0 || self.spill_partitions > 0 {
            out.push_str(&format!(
                "spilled: {} bytes in {} partitions\n",
                self.spilled_bytes, self.spill_partitions
            ));
        }
        out
    }
}

/// The timings of one query under one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRun {
    /// Query identifier (e.g. "6d", "18a").
    pub query_id: String,
    /// Planning time (including re-planning during re-optimization).
    pub planning: Duration,
    /// Execution time.
    pub execution: Duration,
    /// Number of result rows.
    pub output_rows: usize,
}

impl QueryRun {
    /// Planning plus execution time.
    pub fn total(&self) -> Duration {
        self.planning + self.execution
    }
}

/// The timings of a whole workload under one configuration.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WorkloadRun {
    /// A label for the configuration ("PostgreSQL", "Perfect-(4)", "Re-optimized", ...).
    pub label: String,
    /// Per-query runs.
    pub queries: Vec<QueryRun>,
}

impl WorkloadRun {
    /// A new, empty run with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            queries: Vec::new(),
        }
    }

    /// Total planning time across all queries.
    pub fn total_planning(&self) -> Duration {
        self.queries.iter().map(|q| q.planning).sum()
    }

    /// Total execution time across all queries.
    pub fn total_execution(&self) -> Duration {
        self.queries.iter().map(|q| q.execution).sum()
    }

    /// Total end-to-end time across all queries.
    pub fn total_time(&self) -> Duration {
        self.total_planning() + self.total_execution()
    }

    /// The execution time of a query by id.
    pub fn execution_of(&self, query_id: &str) -> Option<Duration> {
        self.queries
            .iter()
            .find(|q| q.query_id == query_id)
            .map(|q| q.execution)
    }

    /// The `n` queries with the longest execution time, most expensive first.
    pub fn longest_running(&self, n: usize) -> Vec<&QueryRun> {
        let mut sorted: Vec<&QueryRun> = self.queries.iter().collect();
        sorted.sort_by_key(|q| std::cmp::Reverse(q.execution));
        sorted.truncate(n);
        sorted
    }
}

/// A bucket of the relative-runtime distribution used by Tables II and VI.
#[derive(Debug, Clone, PartialEq)]
pub struct RuntimeBucket {
    /// Human-readable label ("0.8 - 1.2", "> 5.0", ...).
    pub label: String,
    /// Lower bound (inclusive).
    pub low: f64,
    /// Upper bound (exclusive; `f64::INFINITY` for the last bucket).
    pub high: f64,
    /// Number of queries in the bucket.
    pub count: usize,
}

/// Bucket the ratios `time / baseline_time` the way Tables II and VI of the paper do
/// (0.1–0.8, 0.8–1.2, 1.2–2.0, 2.0–5.0, > 5.0; ratios below 0.1 are folded into the
/// first bucket).
pub fn relative_runtime_buckets(ratios: &[f64]) -> Vec<RuntimeBucket> {
    let bounds = [
        ("0.1 - 0.8", 0.0, 0.8),
        ("0.8 - 1.2", 0.8, 1.2),
        ("1.2 - 2.0", 1.2, 2.0),
        ("2.0 - 5.0", 2.0, 5.0),
        ("> 5.0", 5.0, f64::INFINITY),
    ];
    bounds
        .iter()
        .map(|(label, low, high)| RuntimeBucket {
            label: (*label).to_string(),
            low: *low,
            high: *high,
            count: ratios
                .iter()
                .filter(|&&ratio| ratio >= *low && ratio < *high)
                .count(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(label: &str, timings: &[(&str, u64, u64)]) -> WorkloadRun {
        WorkloadRun {
            label: label.into(),
            queries: timings
                .iter()
                .map(|(id, plan_ms, exec_ms)| QueryRun {
                    query_id: (*id).to_string(),
                    planning: Duration::from_millis(*plan_ms),
                    execution: Duration::from_millis(*exec_ms),
                    output_rows: 1,
                })
                .collect(),
        }
    }

    #[test]
    fn workload_totals() {
        let w = run("PostgreSQL", &[("1a", 5, 100), ("2b", 10, 50), ("3c", 1, 500)]);
        assert_eq!(w.total_planning(), Duration::from_millis(16));
        assert_eq!(w.total_execution(), Duration::from_millis(650));
        assert_eq!(w.total_time(), Duration::from_millis(666));
        assert_eq!(w.execution_of("2b"), Some(Duration::from_millis(50)));
        assert_eq!(w.execution_of("zz"), None);
        let top = w.longest_running(2);
        assert_eq!(top[0].query_id, "3c");
        assert_eq!(top[1].query_id, "1a");
        assert_eq!(w.queries[0].total(), Duration::from_millis(105));
    }

    #[test]
    fn buckets_match_paper_table_shape() {
        let ratios = [0.5, 0.9, 1.0, 1.1, 1.5, 3.0, 4.9, 10.0, 0.05];
        let buckets = relative_runtime_buckets(&ratios);
        assert_eq!(buckets.len(), 5);
        assert_eq!(buckets[0].count, 2); // 0.5 and 0.05
        assert_eq!(buckets[1].count, 3); // 0.9, 1.0, 1.1
        assert_eq!(buckets[2].count, 1); // 1.5
        assert_eq!(buckets[3].count, 2); // 3.0, 4.9
        assert_eq!(buckets[4].count, 1); // 10.0
        assert_eq!(buckets.iter().map(|b| b.count).sum::<usize>(), ratios.len());
        assert_eq!(buckets[4].label, "> 5.0");
    }

    #[test]
    fn empty_workload_is_zero() {
        let w = WorkloadRun::new("empty");
        assert_eq!(w.total_time(), Duration::ZERO);
        assert!(w.longest_running(5).is_empty());
    }
}
