//! The pluggable re-optimization control plane.
//!
//! Perron et al.'s central claim is that re-optimization is a *control loop*: observe
//! true cardinalities, decide, re-plan. This module is the decision half of that loop.
//! A [`ReoptPolicy`] watches a query run — through the executor's [`ExecEvent`] stream
//! while the pipeline is in flight, and through the full metrics tree once a run
//! completes — and answers one question at each observation point: keep going, restart
//! the query with what we learned, or re-plan it mid-flight. The mechanism that applies
//! those decisions (temp-table rewrites, cardinality injection, pipeline suspension and
//! breaker-state reuse) lives in the single driver
//! [`execute_with_policy`](crate::reopt::execute_with_policy).
//!
//! The paper's three schemes plus the LEO-style selective-improvement simulation are
//! built-in policies:
//!
//! * [`RestartPolicy`] with `materialize: true` — the paper's materialize-and-replan
//!   scheme ([`ReoptMode::Materialize`](crate::ReoptMode)).
//! * [`RestartPolicy`] with `materialize: false` — the inject-only ablation
//!   ([`ReoptMode::InjectOnly`](crate::ReoptMode)).
//! * [`MidQueryPolicy`] — true mid-flight re-planning
//!   ([`ReoptMode::MidQuery`](crate::ReoptMode)), now triggered by *two* event kinds:
//!   reusable pipeline-breaker completions (exact subtree truth, state reused as a
//!   virtual leaf) and streaming [`ProgressEvent`](reopt_executor::ProgressEvent)s
//!   (early lower bounds — an index-NL pipeline that overshoots its estimate re-plans
//!   long before any breaker completes).
//! * [`SelectivePolicy`] — the selective-improvement simulation of Section IV-E
//!   (correct the lowest mis-estimated operator and its exhausted subtree, re-plan,
//!   repeat), driving [`selective_improvement`](crate::selective_improvement).
//!
//! # Implementing a policy
//!
//! A minimal policy only needs a name and a completion handler. The one below accepts
//! every first plan as final (so it never re-optimizes), which is also the cheapest
//! way to run a query through the policy driver:
//!
//! ```
//! use reopt_core::{Database, PolicyContext, PolicyDecision, ReoptPolicy};
//! use reopt_executor::QueryMetrics;
//! use reopt_planner::QuerySpec;
//! use reopt_storage::{Column, DataType, Row, Schema, Table, Value};
//!
//! struct NeverReoptimize;
//!
//! impl ReoptPolicy for NeverReoptimize {
//!     fn name(&self) -> &str {
//!         "never"
//!     }
//!
//!     fn on_complete(
//!         &mut self,
//!         _metrics: &QueryMetrics,
//!         _spec: &QuerySpec,
//!         _ctx: &PolicyContext,
//!     ) -> PolicyDecision {
//!         PolicyDecision::Continue
//!     }
//! }
//!
//! let mut db = Database::new();
//! let mut t = Table::new("t", Schema::new(vec![Column::not_null("id", DataType::Int)]));
//! for i in 0..10i64 {
//!     t.push_row(Row::from_values(vec![i.into()])).unwrap();
//! }
//! db.create_table(t).unwrap();
//! db.analyze_all().unwrap();
//!
//! let report = db
//!     .execute_with_policy("SELECT count(*) AS c FROM t AS t", &mut NeverReoptimize)
//!     .unwrap();
//! assert!(!report.reoptimized());
//! assert_eq!(report.policy, "never");
//! assert_eq!(report.final_rows[0].value(0), &Value::Int(10));
//! ```

use crate::qerror::q_error;
use reopt_executor::{ExecEvent, QueryMetrics};
use reopt_planner::{QuerySpec, RelSet};

/// Which observation raised a decision. Recorded on every
/// [`ReoptRound`](crate::ReoptRound) so reports distinguish rounds that paid a full
/// detection restart from rounds triggered by cheap in-flight signals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReoptTrigger {
    /// A completed detection run: the query executed to the end and its EXPLAIN
    /// ANALYZE tree was compared against the estimates (the restart schemes).
    DetectionRun,
    /// A pipeline-breaker completion observed mid-flight (exact subtree cardinality).
    BreakerComplete,
    /// A streaming-operator progress report (produced-vs-estimated overshoot, or an
    /// index-NL join whose outer side exhausted).
    Progress,
    /// A breaker sink exceeded its memory grant and was about to spill; the round
    /// re-planned the remainder instead of paying disk I/O. The observed count is
    /// the rows buffered at the denial — a lower bound on the subtree's truth.
    MemoryPressure,
}

impl std::fmt::Display for ReoptTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReoptTrigger::DetectionRun => write!(f, "detection"),
            ReoptTrigger::BreakerComplete => write!(f, "breaker"),
            ReoptTrigger::Progress => write!(f, "progress"),
            ReoptTrigger::MemoryPressure => write!(f, "memory-pressure"),
        }
    }
}

/// The observation backing a non-`Continue` decision: which relation subset missed its
/// estimate, by how much, and through which kind of signal.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// The mis-estimated relation subset, in the indexing of the *currently running*
    /// plan's spec.
    pub rel_set: RelSet,
    /// The optimizer's estimate for that subset.
    pub estimated_rows: f64,
    /// The observed rows: exact for [`ReoptTrigger::DetectionRun`] and
    /// [`ReoptTrigger::BreakerComplete`]; a lower bound for a non-exhausted
    /// [`ReoptTrigger::Progress`] observation.
    pub actual_rows: u64,
    /// The signal that surfaced the violation.
    pub trigger: ReoptTrigger,
}

impl Violation {
    /// The q-error of the violation (for progress lower bounds this is itself a lower
    /// bound on the true q-error).
    pub fn q_error(&self) -> f64 {
        q_error(self.estimated_rows, self.actual_rows as f64)
    }
}

/// A cardinality the policy wants pinned before the next planning round.
#[derive(Debug, Clone, PartialEq)]
pub struct Correction {
    /// The relation subset, in the indexing of the currently running plan's spec.
    pub rel_set: RelSet,
    /// The observed cardinality to inject.
    pub rows: f64,
}

/// What the driver should do next.
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyDecision {
    /// Keep executing the current plan (and accept a completed run as final).
    Continue,
    /// Abandon the current execution and restart with what was learned. With
    /// `materialize: true` the violating subset is split off into a
    /// `CREATE TEMP TABLE … AS SELECT` and the query rewritten around it (the paper's
    /// scheme; `corrections` are ignored because the temp table's ANALYZE statistics
    /// carry the truth). With `materialize: false` every correction is injected into
    /// the estimator and the same query is re-planned (the inject-only ablation and
    /// the selective-improvement simulation).
    Restart {
        /// Materialize the violating subset instead of only injecting cardinalities.
        materialize: bool,
        /// The observation that triggered the restart.
        violation: Violation,
        /// Cardinalities to pin before re-planning (inject restarts only).
        corrections: Vec<Correction>,
    },
    /// Suspend the running pipeline *now* and re-plan mid-flight: reuse the violating
    /// breaker state as a virtual leaf when the trigger is a reusable breaker
    /// completion, otherwise inject the observed bound (plus every exact observation
    /// seen so far) and re-plan the remainder. Only meaningful from
    /// [`ReoptPolicy::on_event`] — there is nothing to suspend once a run completed.
    ReplanMidQuery {
        /// The observation that triggered the re-plan.
        violation: Violation,
    },
}

/// Run-scoped context handed to every policy callback.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyContext {
    /// All relations of the currently running plan (post-collapse indexing, so this
    /// shrinks after a mid-query round reused breaker state).
    pub all_relations: RelSet,
    /// Rounds applied so far across the whole query.
    pub rounds: usize,
}

/// The decision half of the re-optimization control loop. See the [module
/// documentation](self) for the built-in implementations and a minimal example.
///
/// Implementations are consulted by
/// [`execute_with_policy`](crate::reopt::execute_with_policy): once per
/// [`ExecEvent`] while a plan is executing (if [`ReoptPolicy::wants_events`]), and
/// once per completed run. The driver stops consulting the policy after
/// [`ReoptPolicy::max_rounds`] decisions have been applied — the final plan always
/// runs to completion.
pub trait ReoptPolicy {
    /// Short human-readable name, recorded as [`ReoptReport::policy`](crate::ReoptReport).
    fn name(&self) -> &str;

    /// Round budget: the maximum number of non-`Continue` decisions the driver will
    /// apply before letting the current plan finish unconditionally.
    fn max_rounds(&self) -> usize {
        16
    }

    /// Whether the driver should install an executor observer for this policy. Leave
    /// `false` for policies that decide purely from completed runs; the executor then
    /// skips event dispatch and drops drained breaker subtrees eagerly.
    fn wants_events(&self) -> bool {
        false
    }

    /// Called once per executor event (breaker completions and streaming progress)
    /// when [`ReoptPolicy::wants_events`] is `true`. Any non-`Continue` decision
    /// suspends the pipeline.
    fn on_event(&mut self, event: &ExecEvent, ctx: &PolicyContext) -> PolicyDecision {
        let _ = (event, ctx);
        PolicyDecision::Continue
    }

    /// Called once after every run that executed to completion, with the full metrics
    /// tree and the bound spec of the plan that ran.
    fn on_complete(
        &mut self,
        metrics: &QueryMetrics,
        spec: &QuerySpec,
        ctx: &PolicyContext,
    ) -> PolicyDecision;
}

// ---------------------------------------------------------------------------
// Built-in policies
// ---------------------------------------------------------------------------

/// The paper's restart scheme: execute to completion, find the lowest exhausted join
/// whose q-error exceeds the threshold, then either materialize it as a temp table
/// (`materialize: true`, [`ReoptMode::Materialize`](crate::ReoptMode)) or inject its
/// observed cardinality (`materialize: false`,
/// [`ReoptMode::InjectOnly`](crate::ReoptMode)) and restart.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Q-error threshold (the paper settles on 32).
    pub threshold: f64,
    /// Materialize the violating sub-join instead of only injecting its cardinality.
    pub materialize: bool,
    /// Round budget.
    pub max_rounds: usize,
}

impl ReoptPolicy for RestartPolicy {
    fn name(&self) -> &str {
        if self.materialize {
            "materialize-restart"
        } else {
            "inject-only"
        }
    }

    fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    fn on_complete(
        &mut self,
        metrics: &QueryMetrics,
        _spec: &QuerySpec,
        _ctx: &PolicyContext,
    ) -> PolicyDecision {
        let Some(join) = metrics
            .root
            .joins_bottom_up()
            .into_iter()
            .find(|join| join.exhausted && join.q_error() > self.threshold)
        else {
            return PolicyDecision::Continue;
        };
        let violation = Violation {
            rel_set: join.rel_set,
            estimated_rows: join.estimated_rows,
            actual_rows: join.actual_rows,
            trigger: ReoptTrigger::DetectionRun,
        };
        let corrections = if self.materialize {
            Vec::new()
        } else {
            vec![Correction {
                rel_set: join.rel_set,
                rows: join.actual_rows as f64,
            }]
        };
        PolicyDecision::Restart {
            materialize: self.materialize,
            violation,
            corrections,
        }
    }
}

/// True mid-flight re-optimization ([`ReoptMode::MidQuery`](crate::ReoptMode)):
/// suspend the pipeline as soon as an in-flight signal proves the plan wrong.
///
/// Three signals trigger:
///
/// * a **reusable breaker completion** (hash-build side or nested-loop inner) over a
///   proper subset of the query whose exact cardinality misses its estimate by more
///   than the threshold — the completed state is reused as a virtual leaf;
/// * a **streaming progress report** over a proper subset that either *overshot* its
///   estimate by more than the threshold (the produced count is a lower bound, so an
///   overshoot is already proof of an underestimate) or, once exhausted, misses it in
///   either direction. This is what lets index-NL pipelines — which buffer no
///   intermediate breaker state at all — re-plan mid-query;
/// * a **memory-pressure event** over a proper subset: a breaker sink's reservation
///   was denied and it is about to go out of core. No q-error threshold applies —
///   the pressure itself is the violation (the chosen plan buffers more than the
///   budget allows), so the policy always prefers re-planning the remainder around
///   the observed lower bound over paying the spill's disk I/O. If the re-planned
///   query still exceeds the budget the round counter eventually closes the budget
///   and the final plan spills for real.
#[derive(Debug, Clone)]
pub struct MidQueryPolicy {
    /// Q-error threshold.
    pub threshold: f64,
    /// Round budget.
    pub max_rounds: usize,
}

impl ReoptPolicy for MidQueryPolicy {
    fn name(&self) -> &str {
        "mid-query"
    }

    fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    fn wants_events(&self) -> bool {
        true
    }

    fn on_event(&mut self, event: &ExecEvent, ctx: &PolicyContext) -> PolicyDecision {
        // Suspending on a subtree that covers the whole query would gain nothing
        // (there is no remaining join order to re-plan); empty sets carry no signal.
        let rel_set = event.rel_set();
        if rel_set.is_empty() || !rel_set.is_proper_subset_of(ctx.all_relations) {
            return PolicyDecision::Continue;
        }
        match event {
            ExecEvent::BreakerComplete(breaker) => {
                // Non-reusable state (merge/aggregate/sort inputs) cannot seed a
                // virtual leaf; those observations are still recorded by the driver
                // and re-injected at the next re-plan.
                if breaker.reusable
                    && q_error(breaker.estimated_rows, breaker.actual_rows as f64)
                        > self.threshold
                {
                    return PolicyDecision::ReplanMidQuery {
                        violation: Violation {
                            rel_set,
                            estimated_rows: breaker.estimated_rows,
                            actual_rows: breaker.actual_rows,
                            trigger: ReoptTrigger::BreakerComplete,
                        },
                    };
                }
            }
            ExecEvent::Progress(progress) => {
                let exceeded = if progress.exhausted {
                    // The count is exact: q-error in either direction counts.
                    q_error(progress.estimated_rows, progress.produced_rows as f64)
                        > self.threshold
                } else {
                    // The count is a lower bound: only an overshoot is provable.
                    progress.produced_rows as f64
                        > self.threshold * progress.estimated_rows.max(1.0)
                };
                if exceeded {
                    return PolicyDecision::ReplanMidQuery {
                        violation: Violation {
                            rel_set,
                            estimated_rows: progress.estimated_rows,
                            actual_rows: progress.produced_rows,
                            trigger: ReoptTrigger::Progress,
                        },
                    };
                }
            }
            ExecEvent::MemoryPressure(pressure) => {
                // Re-plan instead of spill: no threshold — the denial itself proves
                // the plan's footprint exceeds the budget, and a suspension here
                // costs nothing (the spill has not committed yet).
                return PolicyDecision::ReplanMidQuery {
                    violation: Violation {
                        rel_set,
                        estimated_rows: pressure.estimated_rows,
                        actual_rows: pressure.buffered_rows,
                        trigger: ReoptTrigger::MemoryPressure,
                    },
                };
            }
        }
        PolicyDecision::Continue
    }

    fn on_complete(
        &mut self,
        _metrics: &QueryMetrics,
        _spec: &QuerySpec,
        _ctx: &PolicyContext,
    ) -> PolicyDecision {
        // Mid-query re-optimization never restarts a completed run.
        PolicyDecision::Continue
    }
}

/// The LEO-style selective-improvement simulation (Section IV-E, Figure 5): after each
/// completed run, correct the lowest mis-estimated *exhausted* operator — joins and
/// scans alike — and every exhausted operator below it to the observed truth, then
/// re-plan. Shows how many corrections a feedback loop needs before a good plan
/// appears, and that partial corrections can transiently make plans worse.
#[derive(Debug, Clone)]
pub struct SelectivePolicy {
    /// Q-error threshold above which an estimate counts as wrong.
    pub threshold: f64,
    /// Round budget.
    pub max_rounds: usize,
    /// Every distinct subset corrected so far (re-corrections of a subtree already
    /// corrected in an earlier round must not inflate the paper's "how many
    /// corrections does the feedback loop need" statistic).
    corrected: std::collections::BTreeSet<RelSet>,
    /// Snapshot of `corrected.len()` after each applied round.
    distinct_after_round: Vec<usize>,
}

impl SelectivePolicy {
    /// A selective-improvement policy with the given threshold and round budget.
    pub fn new(threshold: f64, max_rounds: usize) -> Self {
        Self {
            threshold,
            max_rounds,
            corrected: std::collections::BTreeSet::new(),
            distinct_after_round: Vec::new(),
        }
    }

    /// The cumulative number of *distinct* corrected subsets after each applied
    /// round (one entry per round, in order).
    pub fn distinct_corrections_by_round(&self) -> &[usize] {
        &self.distinct_after_round
    }
}

impl ReoptPolicy for SelectivePolicy {
    fn name(&self) -> &str {
        "selective-improvement"
    }

    fn max_rounds(&self) -> usize {
        self.max_rounds
    }

    fn on_complete(
        &mut self,
        metrics: &QueryMetrics,
        _spec: &QuerySpec,
        _ctx: &PolicyContext,
    ) -> PolicyDecision {
        let Some(node) = metrics.root.lowest_mis_estimated(self.threshold) else {
            return PolicyDecision::Continue;
        };
        // Correct this operator's estimate and every exhausted estimate below it
        // (truncated counts are never true cardinalities).
        let mut corrections = Vec::new();
        node.walk(&mut |descendant| {
            if !descendant.metrics.rel_set.is_empty() && descendant.metrics.exhausted {
                self.corrected.insert(descendant.metrics.rel_set);
                corrections.push(Correction {
                    rel_set: descendant.metrics.rel_set,
                    rows: descendant.metrics.actual_rows as f64,
                });
            }
        });
        self.distinct_after_round.push(self.corrected.len());
        PolicyDecision::Restart {
            materialize: false,
            violation: Violation {
                rel_set: node.metrics.rel_set,
                estimated_rows: node.metrics.estimated_rows,
                actual_rows: node.metrics.actual_rows,
                trigger: ReoptTrigger::DetectionRun,
            },
            corrections,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_executor::{
        BreakerEvent, BreakerKind, MemoryPressureEvent, ProgressEvent, ProgressSource,
    };

    fn ctx(n: usize) -> PolicyContext {
        PolicyContext {
            all_relations: RelSet::all(n),
            rounds: 0,
        }
    }

    fn breaker(rels: &[usize], est: f64, actual: u64, reusable: bool) -> ExecEvent {
        ExecEvent::BreakerComplete(BreakerEvent {
            kind: BreakerKind::HashBuild,
            rel_set: RelSet::from_indexes(rels.iter().copied()),
            estimated_rows: est,
            actual_rows: actual,
            reusable,
        })
    }

    fn progress(rels: &[usize], est: f64, produced: u64, exhausted: bool) -> ExecEvent {
        ExecEvent::Progress(ProgressEvent {
            source: if exhausted {
                ProgressSource::OuterExhausted
            } else {
                ProgressSource::OutputBatches
            },
            rel_set: RelSet::from_indexes(rels.iter().copied()),
            estimated_rows: est,
            produced_rows: produced,
            batches: 1,
            exhausted,
        })
    }

    #[test]
    fn mid_query_policy_triggers_on_reusable_breaker_violations_only() {
        let mut policy = MidQueryPolicy {
            threshold: 8.0,
            max_rounds: 16,
        };
        // Reusable, proper subset, q-error 100 → trigger.
        let decision = policy.on_event(&breaker(&[0, 1], 10.0, 1000, true), &ctx(3));
        let PolicyDecision::ReplanMidQuery { violation } = decision else {
            panic!("expected a mid-query decision, got {decision:?}");
        };
        assert_eq!(violation.trigger, ReoptTrigger::BreakerComplete);
        assert!(violation.q_error() > 8.0);
        // Non-reusable state cannot seed a virtual leaf.
        assert_eq!(
            policy.on_event(&breaker(&[0, 1], 10.0, 1000, false), &ctx(3)),
            PolicyDecision::Continue
        );
        // The full relation set leaves nothing to re-plan.
        assert_eq!(
            policy.on_event(&breaker(&[0, 1, 2], 10.0, 1000, true), &ctx(3)),
            PolicyDecision::Continue
        );
        // Within-threshold estimates pass.
        assert_eq!(
            policy.on_event(&breaker(&[0, 1], 900.0, 1000, true), &ctx(3)),
            PolicyDecision::Continue
        );
    }

    fn pressure(rels: &[usize], est: f64, buffered: u64) -> ExecEvent {
        ExecEvent::MemoryPressure(MemoryPressureEvent {
            kind: BreakerKind::HashBuild,
            rel_set: RelSet::from_indexes(rels.iter().copied()),
            estimated_rows: est,
            buffered_rows: buffered,
            buffered_bytes: 4096,
            budget_bytes: 4096,
        })
    }

    #[test]
    fn mid_query_policy_replans_on_memory_pressure_without_a_threshold() {
        let mut policy = MidQueryPolicy {
            threshold: 8.0,
            max_rounds: 16,
        };
        // No q-error needed: estimate 100, buffered 100 — still re-plans.
        let decision = policy.on_event(&pressure(&[0, 1], 100.0, 100), &ctx(3));
        let PolicyDecision::ReplanMidQuery { violation } = decision else {
            panic!("expected a mid-query decision, got {decision:?}");
        };
        assert_eq!(violation.trigger, ReoptTrigger::MemoryPressure);
        assert_eq!(violation.actual_rows, 100);
        // The whole query leaves nothing to re-plan: decline and let the sink spill.
        assert_eq!(
            policy.on_event(&pressure(&[0, 1, 2], 100.0, 100), &ctx(3)),
            PolicyDecision::Continue
        );
    }

    #[test]
    fn mid_query_policy_triggers_on_progress_overshoot_not_undershoot() {
        let mut policy = MidQueryPolicy {
            threshold: 8.0,
            max_rounds: 16,
        };
        // Overshoot: 1000 produced against an estimate of 10 proves an underestimate.
        let decision = policy.on_event(&progress(&[0, 1], 10.0, 1000, false), &ctx(3));
        let PolicyDecision::ReplanMidQuery { violation } = decision else {
            panic!("expected a mid-query decision, got {decision:?}");
        };
        assert_eq!(violation.trigger, ReoptTrigger::Progress);
        assert_eq!(violation.actual_rows, 1000);
        // A low produced count proves nothing while the operator is still running...
        assert_eq!(
            policy.on_event(&progress(&[0, 1], 1000.0, 10, false), &ctx(3)),
            PolicyDecision::Continue
        );
        // ...but once exhausted the same count is an overestimate violation.
        assert!(matches!(
            policy.on_event(&progress(&[0, 1], 1000.0, 10, true), &ctx(3)),
            PolicyDecision::ReplanMidQuery { .. }
        ));
    }

    #[test]
    fn restart_policy_names_and_corrections() {
        let mut materialize = RestartPolicy {
            threshold: 32.0,
            materialize: true,
            max_rounds: 16,
        };
        let mut inject = RestartPolicy {
            threshold: 32.0,
            materialize: false,
            max_rounds: 16,
        };
        assert_eq!(materialize.name(), "materialize-restart");
        assert_eq!(inject.name(), "inject-only");
        assert!(!materialize.wants_events());

        // A metrics tree with one badly under-estimated exhausted join.
        let join = reopt_executor::OperatorMetrics {
            label: "Hash Join".into(),
            rel_set: RelSet::from_indexes([0, 1]),
            is_join: true,
            estimated_rows: 10.0,
            actual_rows: 10_000,
            batches: 1,
            exhausted: true,
            elapsed: std::time::Duration::ZERO,
            encoding: None,
            spilled_bytes: 0,
            spill_partitions: 0,
        };
        let metrics = QueryMetrics {
            root: reopt_executor::MetricsNode {
                metrics: join,
                children: vec![],
            },
            execution_time: std::time::Duration::ZERO,
            engine: "single-thread",
            fallback: None,
        };
        let spec_ctx = ctx(2);
        let spec = dummy_spec();
        match materialize.on_complete(&metrics, &spec, &spec_ctx) {
            PolicyDecision::Restart {
                materialize: true,
                corrections,
                ..
            } => assert!(corrections.is_empty(), "temp-table statistics carry the truth"),
            other => panic!("unexpected decision {other:?}"),
        }
        match inject.on_complete(&metrics, &spec, &spec_ctx) {
            PolicyDecision::Restart {
                materialize: false,
                corrections,
                violation,
            } => {
                assert_eq!(corrections.len(), 1);
                assert_eq!(corrections[0].rows, 10_000.0);
                assert_eq!(violation.trigger, ReoptTrigger::DetectionRun);
            }
            other => panic!("unexpected decision {other:?}"),
        }
    }

    fn dummy_spec() -> QuerySpec {
        QuerySpec {
            relations: vec![],
            local_predicates: vec![],
            join_edges: vec![],
            complex_predicates: vec![],
            output: vec![],
            group_by: vec![],
            order_by: vec![],
            limit: None,
        }
    }
}
