//! Vectorized filter kernels over columnar batches.
//!
//! [`filter_mask`] evaluates a predicate against a [`ColumnBatch`] with tight typed
//! loops — `i64`/`f64` comparisons over native vectors and `u32` code comparisons or
//! cached per-code truth tables over dictionary columns — instead of decoding rows and
//! dispatching on boxed [`Value`]s.
//!
//! The kernels support only *total* predicate shapes: sub-expressions that can never
//! raise an evaluation error (no arithmetic, no `LIKE` on non-text columns, no `NOT`).
//! Anything else returns `None` and the caller falls back to row-wise
//! [`Expr::eval_predicate`], which preserves the engine's error behavior exactly. For
//! supported shapes the mask is bit-for-bit identical to the row-wise result: SQL
//! three-valued logic collapses NULL to "reject" at the WHERE clause, and under that
//! collapse `AND`/`OR` compose as plain boolean `&`/`|` (`NULL AND x` rejects unless
//! `x` rejects first either way; `NULL OR x` keeps exactly when `x` keeps).
//!
//! Dictionary columns get two strategies:
//!
//! * `=` / `<>` against a text literal resolve the literal to a code once per batch
//!   and compare codes.
//! * Ordering comparisons, `IN` lists and `LIKE` build a per-code truth table — one
//!   row-wise evaluation per *distinct string* — cached in a [`MaskCache`] keyed by
//!   (predicate node, dictionary allocation), so repeated batches over the same table
//!   reuse it.

use crate::expr::{BinaryOp, Expr};
use crate::like::like_match;
use reopt_storage::{Bitmap, ColumnBatch, ColumnData, StringDict, Value, NULL_CODE};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache of per-code truth tables for dictionary-encoded predicates.
///
/// Keyed by the address of the predicate node and the address of the dictionary
/// allocation; the cached entry holds an `Arc` to the dictionary so the allocation
/// (and therefore the key) cannot be reused while the entry is alive. One cache is
/// expected to live as long as the operator that owns the predicate.
#[derive(Debug, Default)]
pub struct MaskCache {
    tables: HashMap<(usize, usize), CachedTruth>,
}

#[derive(Debug)]
struct CachedTruth {
    /// Pins the dictionary allocation so the pointer key stays unambiguous.
    _dict: Arc<StringDict>,
    /// Truth value per dictionary code (NULL rows are always false).
    truth: Vec<bool>,
}

impl MaskCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up or build the truth table for (`key`, `dict`).
    fn truth_table(
        &mut self,
        key: usize,
        dict: &Arc<StringDict>,
        build: impl Fn(&str) -> bool,
    ) -> &[bool] {
        let entry = self
            .tables
            .entry((key, Arc::as_ptr(dict) as usize))
            .or_insert_with(|| CachedTruth {
                _dict: Arc::clone(dict),
                truth: dict.values().iter().map(|s| build(s)).collect(),
            });
        &entry.truth
    }
}

/// Evaluate `expr` as a WHERE-clause mask over `batch`: `mask[i]` is whether row `i`
/// passes (NULL collapses to false, as in [`Expr::eval_predicate`]).
///
/// Returns `None` when the predicate shape is not kernel-supported; the caller must
/// then fall back to row-wise evaluation. `Some` masks are exact — same kept rows,
/// and no errors are possible for supported shapes.
pub fn filter_mask(expr: &Expr, batch: &ColumnBatch, cache: &mut MaskCache) -> Option<Vec<bool>> {
    let key = expr as *const Expr as usize;
    match expr {
        Expr::Binary { op, left, right } => match op {
            BinaryOp::And => {
                let mut mask = filter_mask(left, batch, cache)?;
                let rhs = filter_mask(right, batch, cache)?;
                for (m, r) in mask.iter_mut().zip(rhs) {
                    *m &= r;
                }
                Some(mask)
            }
            BinaryOp::Or => {
                let mut mask = filter_mask(left, batch, cache)?;
                let rhs = filter_mask(right, batch, cache)?;
                for (m, r) in mask.iter_mut().zip(rhs) {
                    *m |= r;
                }
                Some(mask)
            }
            op if op.is_comparison() => {
                if let (Some(idx), Some(lit)) = (bound_index(left), right.as_literal()) {
                    cmp_mask(*op, batch.column(idx), lit, key, cache)
                } else if let (Some(lit), Some(idx)) = (left.as_literal(), bound_index(right)) {
                    cmp_mask(op.swap_operands(), batch.column(idx), lit, key, cache)
                } else {
                    None
                }
            }
            _ => None,
        },
        Expr::InList {
            expr,
            list,
            negated,
        } => in_list_mask(batch.column(bound_index(expr)?), list, *negated, key, cache),
        Expr::Between {
            expr,
            low,
            high,
            negated,
        } => {
            let column = batch.column(bound_index(expr)?);
            let (low, high) = (low.as_literal()?, high.as_literal()?);
            if low.is_null() || high.is_null() {
                return None;
            }
            between_mask(column, low, high, *negated)
        }
        Expr::IsNull { expr, negated } => Some(is_null_mask(batch.column(bound_index(expr)?), *negated)),
        Expr::Like {
            expr,
            pattern,
            negated,
        } => match batch.column(bound_index(expr)?) {
            ColumnData::Dict { codes, dict } => {
                let truth = cache.truth_table(key, dict, |s| like_match(s, pattern) != *negated);
                Some(codes.iter().map(|&c| c != NULL_CODE && truth[c as usize]).collect())
            }
            _ => None,
        },
        _ => None,
    }
}

/// The input ordinal of a bound column reference, if that is what `expr` is.
fn bound_index(expr: &Expr) -> Option<usize> {
    match expr {
        Expr::BoundColumn { index, .. } => Some(*index),
        _ => None,
    }
}

/// Whether a comparison outcome passes under `op`.
fn keep(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("non-comparison operator"),
    }
}

/// [`Value::total_cmp`] of a native `i64` against a non-NULL literal.
fn int_ord(a: i64, lit: &Value) -> Ordering {
    match lit {
        Value::Int(b) => a.cmp(b),
        Value::Float(b) => (a as f64).total_cmp(b),
        Value::Bool(_) => Ordering::Greater,
        Value::Text(_) => Ordering::Less,
        Value::Null => unreachable!("callers reject NULL literals"),
    }
}

/// [`Value::total_cmp`] of a native `f64` against a non-NULL literal.
fn float_ord(a: f64, lit: &Value) -> Ordering {
    match lit {
        Value::Int(b) => a.total_cmp(&(*b as f64)),
        Value::Float(b) => a.total_cmp(b),
        Value::Bool(_) => Ordering::Greater,
        Value::Text(_) => Ordering::Less,
        Value::Null => unreachable!("callers reject NULL literals"),
    }
}

/// [`Value::total_cmp`] of a dictionary string against a non-NULL literal.
fn text_ord(s: &str, lit: &Value) -> Ordering {
    match lit {
        Value::Text(t) => s.cmp(t.as_str()),
        Value::Int(_) | Value::Float(_) | Value::Bool(_) => Ordering::Greater,
        Value::Null => unreachable!("callers reject NULL literals"),
    }
}

/// Comparison mask `column op lit` (NULL rows and NULL literals are false).
fn cmp_mask(
    op: BinaryOp,
    column: &ColumnData,
    lit: &Value,
    key: usize,
    cache: &mut MaskCache,
) -> Option<Vec<bool>> {
    if lit.is_null() {
        // `col op NULL` is NULL for every row, which a WHERE clause rejects.
        return Some(vec![false; column.len()]);
    }
    match column {
        ColumnData::Int { values, validity } => Some(
            values
                .iter()
                .enumerate()
                .map(|(i, &a)| validity.get(i) && keep(op, int_ord(a, lit)))
                .collect(),
        ),
        ColumnData::Float { values, validity } => Some(
            values
                .iter()
                .enumerate()
                .map(|(i, &a)| validity.get(i) && keep(op, float_ord(a, lit)))
                .collect(),
        ),
        ColumnData::Dict { codes, dict } => {
            if matches!(op, BinaryOp::Eq | BinaryOp::NotEq) {
                if let Value::Text(t) = lit {
                    // Resolve the literal to a code once and compare codes.
                    let target = dict.lookup(t);
                    let mask = codes
                        .iter()
                        .map(|&c| {
                            c != NULL_CODE && (Some(c) == target) == (op == BinaryOp::Eq)
                        })
                        .collect();
                    return Some(mask);
                }
            }
            let truth = cache.truth_table(key, dict, |s| keep(op, text_ord(s, lit)));
            Some(codes.iter().map(|&c| c != NULL_CODE && truth[c as usize]).collect())
        }
        ColumnData::Bool { .. } | ColumnData::Val(_) => None,
    }
}

/// `IN` / `NOT IN` result for one non-NULL probe outcome, mirroring the row-wise
/// evaluator: found → `!negated`; not found but the list holds a NULL → NULL (reject);
/// otherwise `negated`.
fn in_list_result(found: bool, list_has_null: bool, negated: bool) -> bool {
    if found {
        !negated
    } else if list_has_null {
        false
    } else {
        negated
    }
}

/// `IN`-list mask over a column (NULL rows are false).
fn in_list_mask(
    column: &ColumnData,
    list: &[Value],
    negated: bool,
    key: usize,
    cache: &mut MaskCache,
) -> Option<Vec<bool>> {
    let list_has_null = list.iter().any(Value::is_null);
    match column {
        ColumnData::Int { values, validity } => Some(
            values
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    validity.get(i) && {
                        let found = list
                            .iter()
                            .any(|v| !v.is_null() && int_ord(a, v) == Ordering::Equal);
                        in_list_result(found, list_has_null, negated)
                    }
                })
                .collect(),
        ),
        ColumnData::Float { values, validity } => Some(
            values
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    validity.get(i) && {
                        let found = list
                            .iter()
                            .any(|v| !v.is_null() && float_ord(a, v) == Ordering::Equal);
                        in_list_result(found, list_has_null, negated)
                    }
                })
                .collect(),
        ),
        ColumnData::Dict { codes, dict } => {
            let truth = cache.truth_table(key, dict, |s| {
                let found = list
                    .iter()
                    .any(|v| !v.is_null() && text_ord(s, v) == Ordering::Equal);
                in_list_result(found, list_has_null, negated)
            });
            Some(codes.iter().map(|&c| c != NULL_CODE && truth[c as usize]).collect())
        }
        ColumnData::Bool { .. } | ColumnData::Val(_) => None,
    }
}

/// `BETWEEN` mask over numeric columns with non-NULL literal bounds.
fn between_mask(
    column: &ColumnData,
    low: &Value,
    high: &Value,
    negated: bool,
) -> Option<Vec<bool>> {
    match column {
        ColumnData::Int { values, validity } => Some(
            values
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    validity.get(i) && {
                        let in_range = int_ord(a, low) != Ordering::Less
                            && int_ord(a, high) != Ordering::Greater;
                        in_range != negated
                    }
                })
                .collect(),
        ),
        ColumnData::Float { values, validity } => Some(
            values
                .iter()
                .enumerate()
                .map(|(i, &a)| {
                    validity.get(i) && {
                        let in_range = float_ord(a, low) != Ordering::Less
                            && float_ord(a, high) != Ordering::Greater;
                        in_range != negated
                    }
                })
                .collect(),
        ),
        _ => None,
    }
}

/// `IS [NOT] NULL` mask (total for every column representation).
fn is_null_mask(column: &ColumnData, negated: bool) -> Vec<bool> {
    fn from_validity(validity: &Bitmap, negated: bool) -> Vec<bool> {
        (0..validity.len()).map(|i| validity.get(i) == negated).collect()
    }
    match column {
        ColumnData::Int { validity, .. }
        | ColumnData::Float { validity, .. }
        | ColumnData::Bool { validity, .. } => from_validity(validity, negated),
        ColumnData::Dict { codes, .. } => codes
            .iter()
            .map(|&c| (c == NULL_CODE) != negated)
            .collect(),
        ColumnData::Val(values) => values.iter().map(|v| v.is_null() != negated).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_storage::{Column, DataType, Row, Schema};

    /// Build a columnar batch plus the equivalent rows for oracle comparison.
    fn sample() -> (Schema, ColumnBatch, Vec<Row>) {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("rating", DataType::Float),
            Column::new("genre", DataType::Text),
            Column::new("flag", DataType::Bool),
        ])
        .qualified("t");
        let rows: Vec<Row> = vec![
            vec![Value::Int(1), Value::Float(7.5), Value::from("drama"), Value::Bool(true)],
            vec![Value::Int(2), Value::Null, Value::from("comedy"), Value::Bool(false)],
            vec![Value::Null, Value::Float(3.0), Value::Null, Value::Null],
            vec![Value::Int(4), Value::Float(9.1), Value::from(""), Value::Bool(true)],
            vec![Value::Int(5), Value::Float(7.5), Value::from("drama"), Value::Null],
        ]
        .into_iter()
        .map(Row::from_values)
        .collect();
        let mut columns: Vec<ColumnData> = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new_for(c.data_type()))
            .collect();
        for row in &rows {
            for (idx, column) in columns.iter_mut().enumerate() {
                column.push(row.value(idx).clone());
            }
        }
        (schema, ColumnBatch::new(columns), rows)
    }

    /// Assert the kernel mask matches row-wise `eval_predicate` exactly.
    fn assert_mask_matches_rows(expr: Expr) {
        let (schema, batch, rows) = sample();
        let bound = expr.bind(&schema).unwrap();
        let mut cache = MaskCache::new();
        let mask = filter_mask(&bound, &batch, &mut cache)
            .unwrap_or_else(|| panic!("kernel rejected {}", bound.to_sql()));
        let oracle: Vec<bool> = rows
            .iter()
            .map(|r| bound.eval_predicate(r).unwrap())
            .collect();
        assert_eq!(mask, oracle, "mask mismatch for {}", bound.to_sql());
    }

    #[test]
    fn comparisons_match_row_wise_evaluation() {
        for op in [
            BinaryOp::Eq,
            BinaryOp::NotEq,
            BinaryOp::Lt,
            BinaryOp::LtEq,
            BinaryOp::Gt,
            BinaryOp::GtEq,
        ] {
            assert_mask_matches_rows(Expr::binary(op, Expr::col("t", "id"), Expr::lit(2)));
            assert_mask_matches_rows(Expr::binary(op, Expr::col("t", "rating"), Expr::lit(7.5)));
            assert_mask_matches_rows(Expr::binary(op, Expr::col("t", "genre"), Expr::lit("drama")));
            // Literal-on-the-left normalizes by swapping the operator.
            assert_mask_matches_rows(Expr::binary(op, Expr::lit(2), Expr::col("t", "id")));
        }
    }

    #[test]
    fn cross_type_literals_follow_total_order() {
        // Int column vs float and text literals; text column vs int literal.
        assert_mask_matches_rows(Expr::binary(BinaryOp::Eq, Expr::col("t", "id"), Expr::lit(2.0)));
        assert_mask_matches_rows(Expr::binary(BinaryOp::Lt, Expr::col("t", "id"), Expr::lit("a")));
        assert_mask_matches_rows(Expr::binary(BinaryOp::Gt, Expr::col("t", "genre"), Expr::lit(0)));
        assert_mask_matches_rows(Expr::binary(BinaryOp::Lt, Expr::col("t", "rating"), Expr::lit(8)));
    }

    #[test]
    fn null_literal_comparison_rejects_every_row() {
        let (schema, batch, _) = sample();
        let e = Expr::binary(BinaryOp::Eq, Expr::col("t", "id"), Expr::Literal(Value::Null))
            .bind(&schema)
            .unwrap();
        let mask = filter_mask(&e, &batch, &mut MaskCache::new()).unwrap();
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn and_or_compose_under_null_collapse() {
        assert_mask_matches_rows(Expr::and(
            Expr::binary(BinaryOp::Gt, Expr::col("t", "id"), Expr::lit(1)),
            Expr::binary(BinaryOp::Lt, Expr::col("t", "rating"), Expr::lit(9.0)),
        ));
        assert_mask_matches_rows(Expr::or(
            Expr::eq(Expr::col("t", "genre"), Expr::lit("comedy")),
            Expr::binary(BinaryOp::GtEq, Expr::col("t", "rating"), Expr::lit(9.0)),
        ));
    }

    #[test]
    fn in_lists_match_row_wise_evaluation() {
        for negated in [false, true] {
            assert_mask_matches_rows(Expr::InList {
                expr: Box::new(Expr::col("t", "id")),
                list: vec![Value::Int(1), Value::Float(4.0)],
                negated,
            });
            // NULL in the list: NOT IN rejects everything, IN behaves as usual.
            assert_mask_matches_rows(Expr::InList {
                expr: Box::new(Expr::col("t", "id")),
                list: vec![Value::Int(1), Value::Null],
                negated,
            });
            assert_mask_matches_rows(Expr::InList {
                expr: Box::new(Expr::col("t", "genre")),
                list: vec![Value::from("drama"), Value::from("")],
                negated,
            });
        }
    }

    #[test]
    fn between_matches_row_wise_evaluation() {
        for negated in [false, true] {
            assert_mask_matches_rows(Expr::Between {
                expr: Box::new(Expr::col("t", "id")),
                low: Box::new(Expr::lit(2)),
                high: Box::new(Expr::lit(4)),
                negated,
            });
            assert_mask_matches_rows(Expr::Between {
                expr: Box::new(Expr::col("t", "rating")),
                low: Box::new(Expr::lit(3.5)),
                high: Box::new(Expr::lit(8)),
                negated,
            });
        }
    }

    #[test]
    fn is_null_supports_every_column_kind() {
        for negated in [false, true] {
            for col in ["id", "rating", "genre", "flag"] {
                assert_mask_matches_rows(Expr::IsNull {
                    expr: Box::new(Expr::col("t", col)),
                    negated,
                });
            }
        }
    }

    #[test]
    fn like_runs_on_dictionary_columns_only() {
        for negated in [false, true] {
            assert_mask_matches_rows(Expr::Like {
                expr: Box::new(Expr::col("t", "genre")),
                pattern: "%dram%".into(),
                negated,
            });
        }
        // LIKE on an int column can raise a type error row-wise; the kernel refuses.
        let (schema, batch, _) = sample();
        let e = Expr::Like {
            expr: Box::new(Expr::col("t", "id")),
            pattern: "%1%".into(),
            negated: false,
        }
        .bind(&schema)
        .unwrap();
        assert!(filter_mask(&e, &batch, &mut MaskCache::new()).is_none());
    }

    #[test]
    fn unsupported_shapes_fall_back() {
        let (schema, batch, _) = sample();
        let mut cache = MaskCache::new();
        // NOT is not mask-composable under the NULL collapse.
        let e = Expr::Not(Box::new(Expr::eq(Expr::col("t", "id"), Expr::lit(1))))
            .bind(&schema)
            .unwrap();
        assert!(filter_mask(&e, &batch, &mut cache).is_none());
        // Column-vs-column comparisons are join territory, not scan kernels.
        let e = Expr::eq(Expr::col("t", "id"), Expr::col("t", "rating"))
            .bind(&schema)
            .unwrap();
        assert!(filter_mask(&e, &batch, &mut cache).is_none());
        // Arithmetic can raise division-by-zero; the kernel refuses.
        let e = Expr::binary(
            BinaryOp::Gt,
            Expr::binary(BinaryOp::Div, Expr::col("t", "id"), Expr::lit(0)),
            Expr::lit(0),
        )
        .bind(&schema)
        .unwrap();
        assert!(filter_mask(&e, &batch, &mut cache).is_none());
        // Bool columns only support IS NULL.
        let e = Expr::eq(Expr::col("t", "flag"), Expr::lit(true)).bind(&schema).unwrap();
        assert!(filter_mask(&e, &batch, &mut cache).is_none());
    }

    #[test]
    fn truth_tables_are_cached_per_predicate_and_dictionary() {
        let (schema, batch, _) = sample();
        let e = Expr::Like {
            expr: Box::new(Expr::col("t", "genre")),
            pattern: "%a%".into(),
            negated: false,
        }
        .bind(&schema)
        .unwrap();
        let mut cache = MaskCache::new();
        let first = filter_mask(&e, &batch, &mut cache).unwrap();
        assert_eq!(cache.tables.len(), 1);
        let second = filter_mask(&e, &batch, &mut cache).unwrap();
        assert_eq!(cache.tables.len(), 1, "same batch must reuse the table");
        assert_eq!(first, second);
    }

    #[test]
    fn empty_batch_probes_report_support() {
        // Operators probe kernel support with an empty batch at construction time.
        let (schema, _, _) = sample();
        let batch = ColumnBatch::empty_for(&schema);
        let e = Expr::eq(Expr::col("t", "genre"), Expr::lit("drama"))
            .bind(&schema)
            .unwrap();
        let mask = filter_mask(&e, &batch, &mut MaskCache::new()).unwrap();
        assert!(mask.is_empty());
    }
}
