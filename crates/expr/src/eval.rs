//! Expression evaluation with SQL three-valued logic.

use crate::expr::{BinaryOp, Expr};
use crate::like::like_match;
use reopt_storage::{Row, Value};
use std::cmp::Ordering;
use std::fmt;

/// Errors raised during evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// An unresolved column reference reached the evaluator (i.e. `bind` was not called).
    UnboundColumn(String),
    /// The operand types are not valid for the operator.
    TypeMismatch(String),
    /// Division by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundColumn(name) => {
                write!(f, "unbound column reference '{name}' during evaluation")
            }
            EvalError::TypeMismatch(detail) => write!(f, "type mismatch: {detail}"),
            EvalError::DivisionByZero => f.write_str("division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

impl Expr {
    /// Evaluate the expression against a row, producing a value (possibly NULL).
    pub fn eval(&self, row: &Row) -> Result<Value, EvalError> {
        match self {
            Expr::Column(r) => Err(EvalError::UnboundColumn(r.to_string())),
            Expr::BoundColumn { index, .. } => Ok(row.value(*index).clone()),
            Expr::Literal(v) => Ok(v.clone()),
            Expr::Binary { op, left, right } => eval_binary(*op, left, right, row),
            Expr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                match v {
                    Value::Null => Ok(Value::Null),
                    Value::Text(s) => {
                        let matched = like_match(&s, pattern);
                        Ok(Value::Bool(matched != *negated))
                    }
                    other => Err(EvalError::TypeMismatch(format!(
                        "LIKE requires text, got {other}"
                    ))),
                }
            }
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                let mut found = false;
                for item in list {
                    match v.sql_eq(item) {
                        Some(true) => {
                            found = true;
                            break;
                        }
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if found {
                    Ok(Value::Bool(!*negated))
                } else if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Bool(*negated))
                }
            }
            Expr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Bool(v.is_null() != *negated))
            }
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                let ge_low = v.sql_cmp(&lo).map(|o| o != Ordering::Less);
                let le_high = v.sql_cmp(&hi).map(|o| o != Ordering::Greater);
                match (ge_low, le_high) {
                    (Some(a), Some(b)) => Ok(Value::Bool((a && b) != *negated)),
                    (Some(false), _) | (_, Some(false)) => Ok(Value::Bool(*negated)),
                    _ => Ok(Value::Null),
                }
            }
            Expr::Not(e) => match e.eval(row)? {
                Value::Null => Ok(Value::Null),
                v => match v.as_bool() {
                    Some(b) => Ok(Value::Bool(!b)),
                    None => Err(EvalError::TypeMismatch(format!("NOT requires bool, got {v}"))),
                },
            },
        }
    }

    /// Evaluate the expression as a predicate: NULL and false both reject the row,
    /// exactly as a SQL WHERE clause does.
    pub fn eval_predicate(&self, row: &Row) -> Result<bool, EvalError> {
        Ok(match self.eval(row)? {
            Value::Bool(b) => b,
            Value::Null => false,
            other => other.as_bool().ok_or_else(|| {
                EvalError::TypeMismatch(format!("predicate evaluated to non-boolean {other}"))
            })?,
        })
    }

    /// Retain only the rows of the batch that satisfy the predicate, in place — the
    /// pipelined executor's filter inner loop.
    /// On evaluation error the batch contents are unspecified and the first error is
    /// returned.
    pub fn filter_batch(&self, rows: &mut Vec<Row>) -> Result<(), EvalError> {
        let mut first_error = None;
        rows.retain(|row| match self.eval_predicate(row) {
            Ok(keep) => keep,
            Err(error) => {
                if first_error.is_none() {
                    first_error = Some(error);
                }
                false
            }
        });
        match first_error {
            Some(error) => Err(error),
            None => Ok(()),
        }
    }
}

fn eval_binary(op: BinaryOp, left: &Expr, right: &Expr, row: &Row) -> Result<Value, EvalError> {
    // Logical connectives need SQL three-valued logic with short-circuiting.
    if op == BinaryOp::And {
        let l = left.eval(row)?;
        match l.as_bool() {
            Some(false) => return Ok(Value::Bool(false)),
            _ => {
                let r = right.eval(row)?;
                return Ok(match (l.is_null(), r.as_bool(), r.is_null()) {
                    (_, Some(false), _) => Value::Bool(false),
                    (true, _, _) | (_, _, true) => Value::Null,
                    _ => Value::Bool(true),
                });
            }
        }
    }
    if op == BinaryOp::Or {
        let l = left.eval(row)?;
        match l.as_bool() {
            Some(true) => return Ok(Value::Bool(true)),
            _ => {
                let r = right.eval(row)?;
                return Ok(match (l.is_null(), r.as_bool(), r.is_null()) {
                    (_, Some(true), _) => Value::Bool(true),
                    (true, _, _) | (_, _, true) => Value::Null,
                    _ => Value::Bool(false),
                });
            }
        }
    }

    let l = left.eval(row)?;
    let r = right.eval(row)?;

    if op.is_comparison() {
        return Ok(match l.sql_cmp(&r) {
            None => Value::Null,
            Some(ord) => Value::Bool(match op {
                BinaryOp::Eq => ord == Ordering::Equal,
                BinaryOp::NotEq => ord != Ordering::Equal,
                BinaryOp::Lt => ord == Ordering::Less,
                BinaryOp::LtEq => ord != Ordering::Greater,
                BinaryOp::Gt => ord == Ordering::Greater,
                BinaryOp::GtEq => ord != Ordering::Less,
                _ => unreachable!("non-comparison operator"),
            }),
        });
    }

    // Arithmetic.
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match (l.as_int(), r.as_int(), op) {
        (Some(a), Some(b), BinaryOp::Add) => return Ok(Value::Int(a.wrapping_add(b))),
        (Some(a), Some(b), BinaryOp::Sub) => return Ok(Value::Int(a.wrapping_sub(b))),
        (Some(a), Some(b), BinaryOp::Mul) => return Ok(Value::Int(a.wrapping_mul(b))),
        (Some(a), Some(b), BinaryOp::Div) => {
            if b == 0 {
                return Err(EvalError::DivisionByZero);
            }
            return Ok(Value::Int(a / b));
        }
        _ => {}
    }
    let (a, b) = match (l.as_float(), r.as_float()) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            return Err(EvalError::TypeMismatch(format!(
                "cannot apply {op} to {l} and {r}"
            )))
        }
    };
    Ok(match op {
        BinaryOp::Add => Value::Float(a + b),
        BinaryOp::Sub => Value::Float(a - b),
        BinaryOp::Mul => Value::Float(a * b),
        BinaryOp::Div => {
            if b == 0.0 {
                return Err(EvalError::DivisionByZero);
            }
            Value::Float(a / b)
        }
        _ => unreachable!("handled above"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ColumnRef;
    use reopt_storage::{Column, DataType, Schema};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
            Column::new("year", DataType::Int),
        ])
        .qualified("t")
    }

    fn row(id: i64, name: &str, year: Option<i64>) -> Row {
        Row::from_values(vec![Value::Int(id), Value::from(name), Value::from(year)])
    }

    fn bind(e: Expr) -> Expr {
        e.bind(&schema()).unwrap()
    }

    #[test]
    fn filter_batch_retains_matches_and_surfaces_errors() {
        let predicate = bind(Expr::binary(
            BinaryOp::Gt,
            Expr::col("t", "year"),
            Expr::lit(2000),
        ));
        let mut rows = vec![
            row(1, "a", Some(1999)),
            row(2, "b", Some(2001)),
            row(3, "c", None),
            row(4, "d", Some(2010)),
        ];
        predicate.filter_batch(&mut rows).unwrap();
        let ids: Vec<&Value> = rows.iter().map(|r| r.value(0)).collect();
        assert_eq!(ids, vec![&Value::Int(2), &Value::Int(4)]);

        // An evaluation error (division by zero) is reported, not swallowed.
        let exploding = bind(Expr::binary(
            BinaryOp::Gt,
            Expr::binary(BinaryOp::Div, Expr::lit(1), Expr::lit(0)),
            Expr::lit(0),
        ));
        let mut rows = vec![row(1, "a", Some(1999))];
        assert_eq!(
            exploding.filter_batch(&mut rows),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn comparison_operators() {
        let r = row(5, "x", Some(2000));
        for (op, expected) in [
            (BinaryOp::Eq, false),
            (BinaryOp::NotEq, true),
            (BinaryOp::Lt, true),
            (BinaryOp::LtEq, true),
            (BinaryOp::Gt, false),
            (BinaryOp::GtEq, false),
        ] {
            let e = bind(Expr::binary(op, Expr::col("t", "id"), Expr::lit(10)));
            assert_eq!(e.eval(&r).unwrap(), Value::Bool(expected), "op {op:?}");
        }
    }

    #[test]
    fn null_propagates_through_comparisons() {
        let r = row(5, "x", None);
        let e = bind(Expr::binary(
            BinaryOp::Gt,
            Expr::col("t", "year"),
            Expr::lit(2000),
        ));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        assert!(!e.eval_predicate(&r).unwrap());
    }

    #[test]
    fn three_valued_and_or() {
        let r = row(5, "x", None);
        // (year > 2000) AND (id = 5): NULL AND TRUE = NULL
        let e = bind(Expr::and(
            Expr::binary(BinaryOp::Gt, Expr::col("t", "year"), Expr::lit(2000)),
            Expr::eq(Expr::col("t", "id"), Expr::lit(5)),
        ));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
        // (year > 2000) AND (id = 6): NULL AND FALSE = FALSE
        let e = bind(Expr::and(
            Expr::binary(BinaryOp::Gt, Expr::col("t", "year"), Expr::lit(2000)),
            Expr::eq(Expr::col("t", "id"), Expr::lit(6)),
        ));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        // (year > 2000) OR (id = 5): NULL OR TRUE = TRUE
        let e = bind(Expr::or(
            Expr::binary(BinaryOp::Gt, Expr::col("t", "year"), Expr::lit(2000)),
            Expr::eq(Expr::col("t", "id"), Expr::lit(5)),
        ));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        // (year > 2000) OR (id = 6): NULL OR FALSE = NULL
        let e = bind(Expr::or(
            Expr::binary(BinaryOp::Gt, Expr::col("t", "year"), Expr::lit(2000)),
            Expr::eq(Expr::col("t", "id"), Expr::lit(6)),
        ));
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn like_and_in_list() {
        let r = row(1, "Robert Downey Jr.", Some(2008));
        let e = bind(Expr::Like {
            expr: Box::new(Expr::col("t", "name")),
            pattern: "%Downey%".into(),
            negated: false,
        });
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = bind(Expr::InList {
            expr: Box::new(Expr::col("t", "name")),
            list: vec![Value::from("Tim"), Value::from("Robert Downey Jr.")],
            negated: false,
        });
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let e = bind(Expr::InList {
            expr: Box::new(Expr::col("t", "id")),
            list: vec![Value::Int(7), Value::Null],
            negated: false,
        });
        // 1 IN (7, NULL) is NULL, not FALSE.
        assert_eq!(e.eval(&r).unwrap(), Value::Null);
    }

    #[test]
    fn between_and_is_null() {
        let r = row(1, "x", Some(2005));
        let e = bind(Expr::Between {
            expr: Box::new(Expr::col("t", "year")),
            low: Box::new(Expr::lit(2000)),
            high: Box::new(Expr::lit(2010)),
            negated: false,
        });
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(true));
        let r2 = row(1, "x", None);
        assert_eq!(e.eval(&r2).unwrap(), Value::Null);
        let e = bind(Expr::IsNull {
            expr: Box::new(Expr::col("t", "year")),
            negated: false,
        });
        assert_eq!(e.eval(&r2).unwrap(), Value::Bool(true));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
    }

    #[test]
    fn arithmetic() {
        let r = row(6, "x", Some(2000));
        let e = bind(Expr::binary(
            BinaryOp::Add,
            Expr::col("t", "id"),
            Expr::lit(4),
        ));
        assert_eq!(e.eval(&r).unwrap(), Value::Int(10));
        let e = bind(Expr::binary(
            BinaryOp::Div,
            Expr::col("t", "id"),
            Expr::lit(0),
        ));
        assert_eq!(e.eval(&r).unwrap_err(), EvalError::DivisionByZero);
        let e = bind(Expr::binary(
            BinaryOp::Mul,
            Expr::lit(2.5),
            Expr::col("t", "id"),
        ));
        assert_eq!(e.eval(&r).unwrap(), Value::Float(15.0));
    }

    #[test]
    fn unbound_column_is_an_error() {
        let e = Expr::Column(ColumnRef::qualified("t", "id"));
        assert!(matches!(
            e.eval(&row(1, "x", None)),
            Err(EvalError::UnboundColumn(_))
        ));
    }

    #[test]
    fn not_operator() {
        let r = row(1, "x", Some(2000));
        let e = bind(Expr::Not(Box::new(Expr::eq(
            Expr::col("t", "id"),
            Expr::lit(1),
        ))));
        assert_eq!(e.eval(&r).unwrap(), Value::Bool(false));
        let e = bind(Expr::Not(Box::new(Expr::eq(
            Expr::col("t", "year"),
            Expr::lit(1),
        ))));
        let r2 = row(1, "x", None);
        assert_eq!(e.eval(&r2).unwrap(), Value::Null);
    }

    #[test]
    fn type_mismatch_reported() {
        let r = row(1, "x", Some(2000));
        let e = bind(Expr::binary(
            BinaryOp::Add,
            Expr::col("t", "name"),
            Expr::lit(1),
        ));
        assert!(matches!(e.eval(&r), Err(EvalError::TypeMismatch(_))));
    }
}
