//! Utilities for analyzing and reshaping predicates.
//!
//! The planner works on *conjunctions*: a WHERE clause is split into its top-level
//! AND-ed conjuncts, each conjunct is classified (single-table filter vs. equi-join
//! predicate) and attached to the relations it touches.

use crate::expr::{BinaryOp, ColumnRef, Expr};

/// Split an expression into its top-level AND-ed conjuncts.
///
/// `a AND (b AND c)` becomes `[a, b, c]`; anything that is not an AND is returned as a
/// single conjunct.
pub fn split_conjunction(expr: &Expr) -> Vec<Expr> {
    let mut out = Vec::new();
    split_into(expr, &mut out);
    out
}

fn split_into(expr: &Expr, out: &mut Vec<Expr>) {
    match expr {
        Expr::Binary {
            op: BinaryOp::And,
            left,
            right,
        } => {
            split_into(left, out);
            split_into(right, out);
        }
        other => out.push(other.clone()),
    }
}

/// Combine conjuncts back into a single expression with ANDs.
/// Returns `None` for an empty input.
pub fn conjoin(conjuncts: &[Expr]) -> Option<Expr> {
    let mut iter = conjuncts.iter().cloned();
    let first = iter.next()?;
    Some(iter.fold(first, Expr::and))
}

/// Collect every column reference appearing in the expression (bound or unbound),
/// in depth-first order, into `out`.
pub fn collect_column_refs(expr: &Expr, out: &mut Vec<ColumnRef>) {
    match expr {
        Expr::Column(r) => out.push(r.clone()),
        Expr::BoundColumn { reference, .. } => out.push(reference.clone()),
        Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            collect_column_refs(left, out);
            collect_column_refs(right, out);
        }
        Expr::Like { expr, .. } | Expr::InList { expr, .. } | Expr::IsNull { expr, .. } => {
            collect_column_refs(expr, out)
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            collect_column_refs(expr, out);
            collect_column_refs(low, out);
            collect_column_refs(high, out);
        }
        Expr::Not(e) => collect_column_refs(e, out),
    }
}

/// The distinct qualifiers (table aliases) referenced by an expression.
pub fn referenced_qualifiers(expr: &Expr) -> Vec<String> {
    let mut refs = Vec::new();
    collect_column_refs(expr, &mut refs);
    let mut quals: Vec<String> = refs.into_iter().filter_map(|r| r.qualifier).collect();
    quals.sort();
    quals.dedup();
    quals
}

/// If the expression is an equi-join predicate between two *different* relations
/// (`a.x = b.y`), return the two column references `(left, right)`.
pub fn as_equi_join(expr: &Expr) -> Option<(ColumnRef, ColumnRef)> {
    if let Expr::Binary {
        op: BinaryOp::Eq,
        left,
        right,
    } = expr
    {
        let l = left.as_column_ref()?;
        let r = right.as_column_ref()?;
        if l.qualifier.is_some() && r.qualifier.is_some() && l.qualifier != r.qualifier {
            return Some((l.clone(), r.clone()));
        }
    }
    None
}

/// If the expression compares a single column to a constant (`col op const` or
/// `const op col`), return `(column, operator-as-if-column-were-on-the-left, constant)`.
pub fn as_column_constant_comparison(
    expr: &Expr,
) -> Option<(ColumnRef, BinaryOp, reopt_storage::Value)> {
    if let Expr::Binary { op, left, right } = expr {
        if !op.is_comparison() {
            return None;
        }
        if let (Some(col), Some(val)) = (left.as_column_ref(), right.as_literal()) {
            return Some((col.clone(), *op, val.clone()));
        }
        if let (Some(val), Some(col)) = (left.as_literal(), right.as_column_ref()) {
            return Some((col.clone(), op.swap_operands(), val.clone()));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_storage::Value;

    #[test]
    fn split_and_rejoin_conjunction() {
        let e = Expr::and(
            Expr::and(
                Expr::eq(Expr::col("a", "x"), Expr::lit(1)),
                Expr::eq(Expr::col("b", "y"), Expr::lit(2)),
            ),
            Expr::eq(Expr::col("c", "z"), Expr::lit(3)),
        );
        let parts = split_conjunction(&e);
        assert_eq!(parts.len(), 3);
        let rejoined = conjoin(&parts).unwrap();
        assert_eq!(split_conjunction(&rejoined).len(), 3);
        assert!(conjoin(&[]).is_none());
    }

    #[test]
    fn split_leaves_or_alone() {
        let e = Expr::or(
            Expr::eq(Expr::col("a", "x"), Expr::lit(1)),
            Expr::eq(Expr::col("a", "x"), Expr::lit(2)),
        );
        assert_eq!(split_conjunction(&e).len(), 1);
    }

    #[test]
    fn collects_column_refs_and_qualifiers() {
        let e = Expr::and(
            Expr::eq(Expr::col("mk", "movie_id"), Expr::col("t", "id")),
            Expr::Like {
                expr: Box::new(Expr::col("n", "name")),
                pattern: "X%".into(),
                negated: false,
            },
        );
        let mut refs = Vec::new();
        collect_column_refs(&e, &mut refs);
        assert_eq!(refs.len(), 3);
        assert_eq!(referenced_qualifiers(&e), vec!["mk", "n", "t"]);
    }

    #[test]
    fn detects_equi_join_predicates() {
        let e = Expr::eq(Expr::col("mk", "keyword_id"), Expr::col("k", "id"));
        let (l, r) = as_equi_join(&e).unwrap();
        assert_eq!(l.qualifier.as_deref(), Some("mk"));
        assert_eq!(r.name, "id");
        // Same-relation equality is not a join predicate.
        let e = Expr::eq(Expr::col("a", "x"), Expr::col("a", "y"));
        assert!(as_equi_join(&e).is_none());
        // Column = constant is not a join predicate.
        let e = Expr::eq(Expr::col("a", "x"), Expr::lit(1));
        assert!(as_equi_join(&e).is_none());
    }

    #[test]
    fn detects_column_constant_comparisons() {
        let e = Expr::binary(BinaryOp::Gt, Expr::col("t", "production_year"), Expr::lit(2000));
        let (col, op, val) = as_column_constant_comparison(&e).unwrap();
        assert_eq!(col.name, "production_year");
        assert_eq!(op, BinaryOp::Gt);
        assert_eq!(val, Value::Int(2000));
        // Constant on the left flips the operator.
        let e = Expr::binary(BinaryOp::Gt, Expr::lit(2000), Expr::col("t", "production_year"));
        let (_, op, _) = as_column_constant_comparison(&e).unwrap();
        assert_eq!(op, BinaryOp::Lt);
        // Join predicates are not column/constant comparisons.
        let e = Expr::eq(Expr::col("a", "x"), Expr::col("b", "y"));
        assert!(as_column_constant_comparison(&e).is_none());
    }
}
