//! SQL `LIKE` pattern matching.
//!
//! Supports `%` (any sequence, including empty) and `_` (exactly one character). The
//! matcher is iterative with backtracking only over the last `%` seen, which is linear in
//! practice for the patterns JOB uses (`'%Downey%Robert%'`, `'X%'`, ...).

/// Return whether `text` matches the SQL LIKE `pattern`.
///
/// Matching is case-sensitive, as in PostgreSQL's `LIKE` (ILIKE is not needed by JOB).
pub fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();

    let (mut ti, mut pi) = (0usize, 0usize);
    // Position of the last '%' in the pattern and the text position we restarted from.
    let mut star: Option<usize> = None;
    let mut star_text = 0usize;

    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star = Some(pi);
            star_text = ti;
            pi += 1;
        } else if let Some(star_pi) = star {
            // Backtrack: let the last '%' absorb one more character.
            pi = star_pi + 1;
            star_text += 1;
            ti = star_text;
        } else {
            return false;
        }
    }
    // Any remaining pattern characters must all be '%'.
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match_without_wildcards() {
        assert!(like_match("abc", "abc"));
        assert!(!like_match("abc", "abd"));
        assert!(!like_match("abc", "ab"));
        assert!(!like_match("ab", "abc"));
    }

    #[test]
    fn percent_matches_any_run() {
        assert!(like_match("Robert Downey Jr.", "%Downey%"));
        assert!(like_match("Downey", "%Downey%"));
        assert!(like_match("Downey, Robert", "%Downey%Robert%"));
        assert!(!like_match("Robert", "%Downey%Robert%"));
        assert!(like_match("anything", "%"));
        assert!(like_match("", "%"));
    }

    #[test]
    fn prefix_and_suffix_patterns() {
        assert!(like_match("Xavier", "X%"));
        assert!(!like_match("Oxford", "X%"));
        assert!(like_match("marvel-comics", "%comics"));
        assert!(!like_match("comics-marvel", "%comics"));
    }

    #[test]
    fn underscore_matches_exactly_one() {
        assert!(like_match("cat", "c_t"));
        assert!(!like_match("ct", "c_t"));
        assert!(!like_match("cart", "c_t"));
        assert!(like_match("cart", "c__t"));
    }

    #[test]
    fn mixed_wildcards() {
        assert!(like_match("The Avengers (2012)", "The %(____)"));
        assert!(like_match("abcde", "a%_e"));
        assert!(!like_match("ae", "a%_e"));
    }

    #[test]
    fn empty_cases() {
        assert!(like_match("", ""));
        assert!(!like_match("a", ""));
        assert!(!like_match("", "a"));
        assert!(like_match("", "%%"));
    }

    #[test]
    fn case_sensitive() {
        assert!(!like_match("downey", "%Downey%"));
    }

    #[test]
    fn unicode_text() {
        assert!(like_match("Amélie", "Am_lie"));
        assert!(like_match("Amélie", "%élie"));
    }
}
