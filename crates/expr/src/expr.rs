//! The expression tree.

use reopt_storage::{Schema, StorageError, Value};
use std::fmt;

/// An unresolved reference to a column, optionally qualified by a table alias
/// (`ci.movie_id` or just `movie_id`).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ColumnRef {
    /// Table alias qualifier, lowercase.
    pub qualifier: Option<String>,
    /// Column name, lowercase.
    pub name: String,
}

impl ColumnRef {
    /// A qualified reference `alias.column`.
    pub fn qualified(qualifier: impl Into<String>, name: impl Into<String>) -> Self {
        Self {
            qualifier: Some(qualifier.into().to_ascii_lowercase()),
            name: name.into().to_ascii_lowercase(),
        }
    }

    /// An unqualified reference `column`.
    pub fn bare(name: impl Into<String>) -> Self {
        Self {
            qualifier: None,
            name: name.into().to_ascii_lowercase(),
        }
    }
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.qualifier {
            Some(q) => write!(f, "{q}.{}", self.name),
            None => f.write_str(&self.name),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// Whether this is a comparison operator producing a boolean.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }

    /// Whether this is a logical connective.
    pub fn is_logical(self) -> bool {
        matches!(self, BinaryOp::And | BinaryOp::Or)
    }

    /// SQL spelling of the operator.
    pub fn sql(self) -> &'static str {
        match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }

    /// The comparison obtained by swapping the operands (`a < b` ⇔ `b > a`).
    pub fn swap_operands(self) -> BinaryOp {
        match self {
            BinaryOp::Lt => BinaryOp::Gt,
            BinaryOp::LtEq => BinaryOp::GtEq,
            BinaryOp::Gt => BinaryOp::Lt,
            BinaryOp::GtEq => BinaryOp::LtEq,
            other => other,
        }
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql())
    }
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Unresolved column reference.
    Column(ColumnRef),
    /// Column resolved to an ordinal position in the input row. The original reference
    /// is kept for display purposes.
    BoundColumn {
        /// Ordinal position in the input row.
        index: usize,
        /// Original reference (for EXPLAIN and SQL rendering).
        reference: ColumnRef,
    },
    /// A literal value.
    Literal(Value),
    /// A binary operation.
    Binary {
        /// The operator.
        op: BinaryOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `expr [NOT] LIKE 'pattern'`.
    Like {
        /// The string-valued operand.
        expr: Box<Expr>,
        /// The LIKE pattern (with `%` and `_` wildcards).
        pattern: String,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// `expr [NOT] IN (v1, v2, ...)`.
    InList {
        /// The probed operand.
        expr: Box<Expr>,
        /// Literal list.
        list: Vec<Value>,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// `expr IS [NOT] NULL`.
    IsNull {
        /// The tested operand.
        expr: Box<Expr>,
        /// Whether the predicate is negated (IS NOT NULL).
        negated: bool,
    },
    /// `expr BETWEEN low AND high`.
    Between {
        /// The tested operand.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
        /// Whether the predicate is negated.
        negated: bool,
    },
    /// `NOT expr`.
    Not(Box<Expr>),
}

impl Expr {
    /// Convenience constructor: `left op right`.
    pub fn binary(op: BinaryOp, left: Expr, right: Expr) -> Expr {
        Expr::Binary {
            op,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Convenience constructor: column reference `alias.name`.
    pub fn col(qualifier: &str, name: &str) -> Expr {
        Expr::Column(ColumnRef::qualified(qualifier, name))
    }

    /// Convenience constructor: a literal.
    pub fn lit(value: impl Into<Value>) -> Expr {
        Expr::Literal(value.into())
    }

    /// Convenience constructor: `left = right`.
    pub fn eq(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Eq, left, right)
    }

    /// Convenience constructor: `left AND right`.
    pub fn and(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::And, left, right)
    }

    /// Convenience constructor: `left OR right`.
    pub fn or(left: Expr, right: Expr) -> Expr {
        Expr::binary(BinaryOp::Or, left, right)
    }

    /// Resolve all column references against `schema`, returning an expression that can
    /// be evaluated against rows with that schema.
    pub fn bind(&self, schema: &Schema) -> Result<Expr, StorageError> {
        Ok(match self {
            Expr::Column(r) => Expr::BoundColumn {
                index: schema.index_of(r.qualifier.as_deref(), &r.name)?,
                reference: r.clone(),
            },
            Expr::BoundColumn { index, reference } => Expr::BoundColumn {
                index: *index,
                reference: reference.clone(),
            },
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.bind(schema)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.bind(schema)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.bind(schema)?),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.bind(schema)?),
                low: Box::new(low.bind(schema)?),
                high: Box::new(high.bind(schema)?),
                negated: *negated,
            },
            Expr::Not(e) => Expr::Not(Box::new(e.bind(schema)?)),
        })
    }

    /// If this expression is a plain (possibly bound) column reference, return it.
    pub fn as_column_ref(&self) -> Option<&ColumnRef> {
        match self {
            Expr::Column(r) => Some(r),
            Expr::BoundColumn { reference, .. } => Some(reference),
            _ => None,
        }
    }

    /// If this expression is a literal, return its value.
    pub fn as_literal(&self) -> Option<&Value> {
        match self {
            Expr::Literal(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the expression contains no column references (is a constant).
    pub fn is_constant(&self) -> bool {
        let mut refs = Vec::new();
        crate::util::collect_column_refs(self, &mut refs);
        refs.is_empty()
    }

    /// Render the expression as SQL text. Used by the re-optimization controller when it
    /// rewrites queries around temporary tables (Fig. 6 of the paper), and by EXPLAIN.
    pub fn to_sql(&self) -> String {
        match self {
            Expr::Column(r) => r.to_string(),
            Expr::BoundColumn { reference, .. } => reference.to_string(),
            Expr::Literal(v) => v.to_sql_literal(),
            Expr::Binary { op, left, right } => {
                if op.is_logical() {
                    format!("({} {} {})", left.to_sql(), op.sql(), right.to_sql())
                } else {
                    format!("{} {} {}", left.to_sql(), op.sql(), right.to_sql())
                }
            }
            Expr::Like {
                expr,
                pattern,
                negated,
            } => format!(
                "{} {}LIKE '{}'",
                expr.to_sql(),
                if *negated { "NOT " } else { "" },
                pattern.replace('\'', "''")
            ),
            Expr::InList {
                expr,
                list,
                negated,
            } => {
                let items: Vec<String> = list.iter().map(Value::to_sql_literal).collect();
                format!(
                    "{} {}IN ({})",
                    expr.to_sql(),
                    if *negated { "NOT " } else { "" },
                    items.join(", ")
                )
            }
            Expr::IsNull { expr, negated } => format!(
                "{} IS {}NULL",
                expr.to_sql(),
                if *negated { "NOT " } else { "" }
            ),
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => format!(
                "{} {}BETWEEN {} AND {}",
                expr.to_sql(),
                if *negated { "NOT " } else { "" },
                low.to_sql(),
                high.to_sql()
            ),
            Expr::Not(e) => format!("NOT ({})", e.to_sql()),
        }
    }

    /// Rewrite every column reference with `f`. Used when the re-optimization controller
    /// redirects references to a materialized temporary table.
    pub fn map_column_refs(&self, f: &impl Fn(&ColumnRef) -> ColumnRef) -> Expr {
        match self {
            Expr::Column(r) => Expr::Column(f(r)),
            Expr::BoundColumn { reference, .. } => Expr::Column(f(reference)),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.map_column_refs(f)),
                right: Box::new(right.map_column_refs(f)),
            },
            Expr::Like {
                expr,
                pattern,
                negated,
            } => Expr::Like {
                expr: Box::new(expr.map_column_refs(f)),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::InList {
                expr,
                list,
                negated,
            } => Expr::InList {
                expr: Box::new(expr.map_column_refs(f)),
                list: list.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(expr.map_column_refs(f)),
                negated: *negated,
            },
            Expr::Between {
                expr,
                low,
                high,
                negated,
            } => Expr::Between {
                expr: Box::new(expr.map_column_refs(f)),
                low: Box::new(low.map_column_refs(f)),
                high: Box::new(high.map_column_refs(f)),
                negated: *negated,
            },
            Expr::Not(e) => Expr::Not(Box::new(e.map_column_refs(f))),
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use reopt_storage::{Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ])
        .qualified("n")
    }

    #[test]
    fn bind_resolves_columns() {
        let e = Expr::eq(Expr::col("n", "name"), Expr::lit("Tim"));
        let bound = e.bind(&schema()).unwrap();
        match bound {
            Expr::Binary { left, .. } => match *left {
                Expr::BoundColumn { index, .. } => assert_eq!(index, 1),
                other => panic!("expected bound column, got {other:?}"),
            },
            other => panic!("expected binary, got {other:?}"),
        }
    }

    #[test]
    fn bind_unknown_column_errors() {
        let e = Expr::col("n", "missing");
        assert!(e.bind(&schema()).is_err());
    }

    #[test]
    fn sql_rendering_roundtrips_shape() {
        let e = Expr::and(
            Expr::eq(Expr::col("n", "id"), Expr::lit(5)),
            Expr::Like {
                expr: Box::new(Expr::col("n", "name")),
                pattern: "%Downey%".into(),
                negated: false,
            },
        );
        assert_eq!(e.to_sql(), "(n.id = 5 AND n.name LIKE '%Downey%')");
    }

    #[test]
    fn sql_rendering_of_in_between_null() {
        let e = Expr::InList {
            expr: Box::new(Expr::col("k", "keyword")),
            list: vec![Value::from("superhero"), Value::from("sequel")],
            negated: false,
        };
        assert_eq!(e.to_sql(), "k.keyword IN ('superhero', 'sequel')");
        let e = Expr::Between {
            expr: Box::new(Expr::col("t", "production_year")),
            low: Box::new(Expr::lit(2000)),
            high: Box::new(Expr::lit(2010)),
            negated: false,
        };
        assert_eq!(e.to_sql(), "t.production_year BETWEEN 2000 AND 2010");
        let e = Expr::IsNull {
            expr: Box::new(Expr::col("t", "title")),
            negated: true,
        };
        assert_eq!(e.to_sql(), "t.title IS NOT NULL");
    }

    #[test]
    fn map_column_refs_rewrites_qualifiers() {
        let e = Expr::eq(Expr::col("mk", "movie_id"), Expr::col("t", "id"));
        let rewritten = e.map_column_refs(&|r| {
            if r.qualifier.as_deref() == Some("mk") {
                ColumnRef::qualified("temp1", format!("mk_{}", r.name))
            } else {
                r.clone()
            }
        });
        assert_eq!(rewritten.to_sql(), "temp1.mk_movie_id = t.id");
    }

    #[test]
    fn operator_helpers() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
        assert!(BinaryOp::Or.is_logical());
        assert_eq!(BinaryOp::Lt.swap_operands(), BinaryOp::Gt);
        assert_eq!(BinaryOp::GtEq.swap_operands(), BinaryOp::LtEq);
        assert_eq!(BinaryOp::Eq.swap_operands(), BinaryOp::Eq);
    }

    #[test]
    fn constant_detection() {
        assert!(Expr::lit(1).is_constant());
        assert!(Expr::binary(BinaryOp::Add, Expr::lit(1), Expr::lit(2)).is_constant());
        assert!(!Expr::col("t", "id").is_constant());
    }

    #[test]
    fn accessors() {
        let c = Expr::col("t", "id");
        assert_eq!(c.as_column_ref().unwrap().name, "id");
        assert!(c.as_literal().is_none());
        let l = Expr::lit(3);
        assert_eq!(l.as_literal(), Some(&Value::Int(3)));
    }
}
