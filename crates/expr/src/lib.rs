//! # reopt-expr
//!
//! Scalar expressions and predicate evaluation.
//!
//! The Join Order Benchmark only uses select-project-join queries whose WHERE clauses are
//! conjunctions of equi-join predicates and single-table filters (`=`, `<>`, range
//! comparisons, `IN` lists, `LIKE`, `IS [NOT] NULL`, plus `AND`/`OR`/`NOT`), so the
//! expression language here covers exactly that subset plus basic arithmetic.
//!
//! Expressions are built with *unresolved* column references ([`ColumnRef`]), then
//! [`Expr::bind`] resolves every reference against a [`Schema`](reopt_storage::Schema)
//! producing an expression that evaluates by ordinal position — the form the executor
//! uses in its inner loops.
//!
//! Bound predicates evaluate two ways: row-wise ([`Expr::eval_predicate`], the
//! general path) and vectorized over columnar batches ([`kernel::filter_mask`], tight
//! typed loops with a fallback to the row-wise path for unsupported shapes).

pub mod eval;
pub mod expr;
pub mod kernel;
pub mod like;
pub mod util;

pub use eval::EvalError;
pub use expr::{BinaryOp, ColumnRef, Expr};
pub use kernel::{filter_mask, MaskCache};
pub use like::like_match;
pub use util::{
    as_column_constant_comparison, as_equi_join, collect_column_refs, conjoin,
    referenced_qualifiers, split_conjunction,
};
