//! Typed column storage: native vectors with validity bitmaps, dictionary-coded text.
//!
//! One [`ColumnData`] holds every value of one column, in row-id order. The same enum
//! is the unit of columnar *batches* ([`ColumnBatch`]): a scan slices each table
//! column over a row range (copying native values and codes, sharing the string
//! dictionary by `Arc`), and downstream kernels run tight typed loops over the
//! vectors instead of dispatching on boxed [`Value`]s per row.
//!
//! Encodings:
//!
//! * `Int` / `Float` / `Bool` — native vectors plus a validity [`Bitmap`]; a NULL row
//!   stores a default payload and a cleared validity bit.
//! * `Dict` — `u32` codes into an [`Arc<StringDict>`]; NULL stores [`NULL_CODE`].
//! * `Val` — a plain `Vec<Value>` escape hatch. A column is *promoted* to `Val` the
//!   first time a value arrives whose variant does not exactly match the column's
//!   native encoding (e.g. `Value::Int` pushed into a `Float` column, which the
//!   schema's `coercible_to` allows). Promotion guarantees that decoding always
//!   reproduces the exact `Value` that was stored — `Int(3)` never silently becomes
//!   `Float(3.0)` — which the engine's `SUM` typing and SQL-literal rendering rely on.

use crate::dict::{StringDict, NULL_CODE};
use crate::row::Row;
use crate::schema::Schema;
use crate::value::{DataType, Value};
use std::ops::Range;
use std::sync::Arc;

/// A fixed-meaning bit vector: bit `i` set means row `i` is valid (non-NULL).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitmap {
    words: Vec<u64>,
    len: usize,
}

impl Bitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the bitmap has no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append one bit.
    pub fn push(&mut self, bit: bool) {
        let word = self.len / 64;
        if word == self.words.len() {
            self.words.push(0);
        }
        if bit {
            self.words[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// The bit at `idx` (false when out of range).
    pub fn get(&self, idx: usize) -> bool {
        if idx >= self.len {
            return false;
        }
        self.words[idx / 64] & (1u64 << (idx % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// A new bitmap holding bits `range`, in order.
    pub fn slice(&self, range: Range<usize>) -> Bitmap {
        let mut out = Bitmap::new();
        for idx in range {
            out.push(self.get(idx));
        }
        out
    }
}

/// All values of one column (or of one column of a batch), in row order.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Native 64-bit integers.
    Int { values: Vec<i64>, validity: Bitmap },
    /// Native 64-bit floats.
    Float { values: Vec<f64>, validity: Bitmap },
    /// Native booleans.
    Bool { values: Vec<bool>, validity: Bitmap },
    /// Dictionary-coded text; NULL rows hold [`NULL_CODE`].
    Dict {
        codes: Vec<u32>,
        dict: Arc<StringDict>,
    },
    /// Uncompressed fallback: exact `Value`s (mixed-variant columns).
    Val(Vec<Value>),
}

impl ColumnData {
    /// An empty column with the native encoding for a declared type.
    pub fn new_for(data_type: DataType) -> Self {
        match data_type {
            DataType::Int => ColumnData::Int {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Float => ColumnData::Float {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Bool => ColumnData::Bool {
                values: Vec::new(),
                validity: Bitmap::new(),
            },
            DataType::Text => ColumnData::Dict {
                codes: Vec::new(),
                dict: Arc::new(StringDict::new()),
            },
        }
    }

    /// Number of stored values.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int { values, .. } => values.len(),
            ColumnData::Float { values, .. } => values.len(),
            ColumnData::Bool { values, .. } => values.len(),
            ColumnData::Dict { codes, .. } => codes.len(),
            ColumnData::Val(values) => values.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a value, promoting the column to [`ColumnData::Val`] when the value's
    /// variant does not exactly match the native encoding (see the module docs).
    pub fn push(&mut self, value: Value) {
        match (&mut *self, value) {
            (ColumnData::Int { values, validity }, Value::Int(v)) => {
                values.push(v);
                validity.push(true);
            }
            (ColumnData::Int { values, validity }, Value::Null) => {
                values.push(0);
                validity.push(false);
            }
            (ColumnData::Float { values, validity }, Value::Float(v)) => {
                values.push(v);
                validity.push(true);
            }
            (ColumnData::Float { values, validity }, Value::Null) => {
                values.push(0.0);
                validity.push(false);
            }
            (ColumnData::Bool { values, validity }, Value::Bool(v)) => {
                values.push(v);
                validity.push(true);
            }
            (ColumnData::Bool { values, validity }, Value::Null) => {
                values.push(false);
                validity.push(false);
            }
            (ColumnData::Dict { codes, dict }, Value::Text(s)) => {
                codes.push(Arc::make_mut(dict).intern(&s));
            }
            (ColumnData::Dict { codes, .. }, Value::Null) => {
                codes.push(NULL_CODE);
            }
            (ColumnData::Val(values), value) => {
                values.push(value);
            }
            (_, value) => {
                // Variant mismatch (e.g. an Int in a Float column): decode what is
                // already stored and fall back to exact values for this column.
                let mut decoded: Vec<Value> = (0..self.len()).map(|i| self.value_at(i)).collect();
                decoded.push(value);
                *self = ColumnData::Val(decoded);
            }
        }
    }

    /// The exact stored value at `idx` (owned).
    pub fn value_at(&self, idx: usize) -> Value {
        match self {
            ColumnData::Int { values, validity } => {
                if validity.get(idx) {
                    Value::Int(values[idx])
                } else {
                    Value::Null
                }
            }
            ColumnData::Float { values, validity } => {
                if validity.get(idx) {
                    Value::Float(values[idx])
                } else {
                    Value::Null
                }
            }
            ColumnData::Bool { values, validity } => {
                if validity.get(idx) {
                    Value::Bool(values[idx])
                } else {
                    Value::Null
                }
            }
            ColumnData::Dict { codes, dict } => {
                let code = codes[idx];
                if code == NULL_CODE {
                    Value::Null
                } else {
                    Value::Text(dict.get(code).to_string())
                }
            }
            ColumnData::Val(values) => values[idx].clone(),
        }
    }

    /// Whether the value at `idx` is NULL.
    pub fn is_null_at(&self, idx: usize) -> bool {
        match self {
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Bool { validity, .. } => !validity.get(idx),
            ColumnData::Dict { codes, .. } => codes[idx] == NULL_CODE,
            ColumnData::Val(values) => values[idx].is_null(),
        }
    }

    /// Number of NULL values.
    pub fn null_count(&self) -> usize {
        match self {
            ColumnData::Int { validity, .. }
            | ColumnData::Float { validity, .. }
            | ColumnData::Bool { validity, .. } => validity.len() - validity.count_set(),
            ColumnData::Dict { codes, .. } => codes.iter().filter(|&&c| c == NULL_CODE).count(),
            ColumnData::Val(values) => values.iter().filter(|v| v.is_null()).count(),
        }
    }

    /// Copy the values in `range` into a new column. Dictionary columns share the
    /// dictionary (an `Arc` clone), so slicing never re-interns strings.
    pub fn slice(&self, range: Range<usize>) -> ColumnData {
        match self {
            ColumnData::Int { values, validity } => ColumnData::Int {
                values: values[range.clone()].to_vec(),
                validity: validity.slice(range),
            },
            ColumnData::Float { values, validity } => ColumnData::Float {
                values: values[range.clone()].to_vec(),
                validity: validity.slice(range),
            },
            ColumnData::Bool { values, validity } => ColumnData::Bool {
                values: values[range.clone()].to_vec(),
                validity: validity.slice(range),
            },
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: codes[range].to_vec(),
                dict: Arc::clone(dict),
            },
            ColumnData::Val(values) => ColumnData::Val(values[range].to_vec()),
        }
    }

    /// Keep only the values whose mask bit is set (mask length == column length).
    pub fn filter(&self, mask: &[bool]) -> ColumnData {
        match self {
            ColumnData::Int { values, validity } => {
                let mut out_values = Vec::new();
                let mut out_validity = Bitmap::new();
                for (i, &keep) in mask.iter().enumerate() {
                    if keep {
                        out_values.push(values[i]);
                        out_validity.push(validity.get(i));
                    }
                }
                ColumnData::Int {
                    values: out_values,
                    validity: out_validity,
                }
            }
            ColumnData::Float { values, validity } => {
                let mut out_values = Vec::new();
                let mut out_validity = Bitmap::new();
                for (i, &keep) in mask.iter().enumerate() {
                    if keep {
                        out_values.push(values[i]);
                        out_validity.push(validity.get(i));
                    }
                }
                ColumnData::Float {
                    values: out_values,
                    validity: out_validity,
                }
            }
            ColumnData::Bool { values, validity } => {
                let mut out_values = Vec::new();
                let mut out_validity = Bitmap::new();
                for (i, &keep) in mask.iter().enumerate() {
                    if keep {
                        out_values.push(values[i]);
                        out_validity.push(validity.get(i));
                    }
                }
                ColumnData::Bool {
                    values: out_values,
                    validity: out_validity,
                }
            }
            ColumnData::Dict { codes, dict } => ColumnData::Dict {
                codes: codes
                    .iter()
                    .zip(mask)
                    .filter_map(|(&c, &keep)| keep.then_some(c))
                    .collect(),
                dict: Arc::clone(dict),
            },
            ColumnData::Val(values) => ColumnData::Val(
                values
                    .iter()
                    .zip(mask)
                    .filter(|&(_, &keep)| keep)
                    .map(|(v, _)| v.clone())
                    .collect(),
            ),
        }
    }

    /// Approximate decoded width in bytes of the value at `idx` (matches
    /// [`Value::width`]).
    pub fn width_at(&self, idx: usize) -> usize {
        match self {
            ColumnData::Int { validity, .. } | ColumnData::Float { validity, .. } => {
                if validity.get(idx) {
                    8
                } else {
                    1
                }
            }
            ColumnData::Bool { .. } => 1,
            ColumnData::Dict { codes, dict } => {
                let code = codes[idx];
                if code == NULL_CODE {
                    1
                } else {
                    dict.get(code).len().max(1)
                }
            }
            ColumnData::Val(values) => values[idx].width(),
        }
    }
}

/// Incrementally maintained per-column metadata: exact NULL count, min/max, and the
/// total decoded byte width. ANALYZE and the cost model read these instead of
/// rescanning (see `Table::average_row_width` and `reopt-catalog`).
#[derive(Debug, Clone, Default)]
pub struct ColumnMeta {
    /// Exact number of NULL values.
    pub null_count: u64,
    /// Smallest non-NULL value (by [`Value::total_cmp`]).
    pub min: Option<Value>,
    /// Largest non-NULL value.
    pub max: Option<Value>,
    /// Sum of [`Value::width`] over all values.
    pub byte_sum: u64,
}

impl ColumnMeta {
    /// Fold one appended value into the metadata.
    pub fn observe(&mut self, value: &Value) {
        self.byte_sum += value.width() as u64;
        if value.is_null() {
            self.null_count += 1;
            return;
        }
        if self.min.as_ref().map(|m| value < m).unwrap_or(true) {
            self.min = Some(value.clone());
        }
        if self.max.as_ref().map(|m| value > m).unwrap_or(true) {
            self.max = Some(value.clone());
        }
    }
}

/// A columnar batch: one [`ColumnData`] per output column plus the row count. The
/// columnar analogue of `RowBatch`, produced by scans and consumed by filter /
/// project / hash-key kernels; decoded to rows ([`ColumnBatch::into_rows`]) only at
/// the root exchange and at breaker materialization points.
#[derive(Debug, Clone)]
pub struct ColumnBatch {
    columns: Vec<ColumnData>,
    len: usize,
}

impl ColumnBatch {
    /// Assemble a batch from columns (all must share the same length).
    pub fn new(columns: Vec<ColumnData>) -> Self {
        let len = columns.first().map(ColumnData::len).unwrap_or(0);
        debug_assert!(columns.iter().all(|c| c.len() == len));
        Self { columns, len }
    }

    /// An empty batch shaped for `schema` (used to probe kernel support).
    pub fn empty_for(schema: &Schema) -> Self {
        Self {
            columns: schema
                .columns()
                .iter()
                .map(|c| ColumnData::new_for(c.data_type()))
                .collect(),
            len: 0,
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// The columns.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// One column.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// The exact value at (`row`, `col`), owned.
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// Decode one row.
    pub fn row(&self, idx: usize) -> Row {
        Row::from_values(self.columns.iter().map(|c| c.value_at(idx)).collect())
    }

    /// Decode every row (the root-exchange / breaker materialization boundary).
    pub fn into_rows(self) -> Vec<Row> {
        (0..self.len).map(|i| self.row(i)).collect()
    }

    /// Keep only the rows whose mask bit is set.
    pub fn filter(&self, mask: &[bool]) -> ColumnBatch {
        debug_assert_eq!(mask.len(), self.len);
        let columns: Vec<ColumnData> = self.columns.iter().map(|c| c.filter(mask)).collect();
        let len = mask.iter().filter(|&&b| b).count();
        ColumnBatch { columns, len }
    }

    /// A batch holding the listed columns (projection to bound column ordinals).
    pub fn project(&self, indices: &[usize]) -> ColumnBatch {
        ColumnBatch {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
            len: self.len,
        }
    }

    /// Per-row join keys over `key_columns`: `None` where any key value is NULL
    /// (NULL never joins), the decoded key values otherwise. The typed loops touch
    /// only the key columns — non-key columns are never decoded here.
    pub fn extract_keys(&self, key_columns: &[usize]) -> Vec<Option<Vec<Value>>> {
        let mut out: Vec<Option<Vec<Value>>> =
            (0..self.len).map(|_| Some(Vec::with_capacity(key_columns.len()))).collect();
        for &col in key_columns {
            let column = &self.columns[col];
            for (row, slot) in out.iter_mut().enumerate() {
                if let Some(key) = slot {
                    if column.is_null_at(row) {
                        *slot = None;
                    } else {
                        key.push(column.value_at(row));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    #[test]
    fn bitmap_push_get_slice() {
        let mut b = Bitmap::new();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 130);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(129));
        assert!(!b.get(1000));
        assert_eq!(b.count_set(), 44);
        let s = b.slice(63..66);
        assert_eq!(s.len(), 3);
        assert_eq!([s.get(0), s.get(1), s.get(2)], [b.get(63), b.get(64), b.get(65)]);
    }

    #[test]
    fn native_int_round_trips_with_nulls() {
        let mut c = ColumnData::new_for(DataType::Int);
        c.push(Value::Int(7));
        c.push(Value::Null);
        c.push(Value::Int(-1));
        assert_eq!(c.len(), 3);
        assert_eq!(c.value_at(0), Value::Int(7));
        assert_eq!(c.value_at(1), Value::Null);
        assert_eq!(c.value_at(2), Value::Int(-1));
        assert_eq!(c.null_count(), 1);
        assert!(c.is_null_at(1));
    }

    #[test]
    fn dict_column_round_trips_and_shares_dictionary_on_slice() {
        let mut c = ColumnData::new_for(DataType::Text);
        c.push(Value::from("a"));
        c.push(Value::Null);
        c.push(Value::from("b"));
        c.push(Value::from("a"));
        assert_eq!(c.value_at(0), Value::from("a"));
        assert_eq!(c.value_at(1), Value::Null);
        assert_eq!(c.value_at(3), Value::from("a"));
        let s = c.slice(1..4);
        assert_eq!(s.value_at(0), Value::Null);
        assert_eq!(s.value_at(2), Value::from("a"));
        if let (ColumnData::Dict { dict: a, .. }, ColumnData::Dict { dict: b, .. }) = (&c, &s) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            panic!("expected dict columns");
        }
    }

    #[test]
    fn variant_mismatch_promotes_to_exact_values() {
        // An Int pushed into a Float column must decode back as Int(3), not
        // Float(3.0): promotion trades compression for exact fidelity.
        let mut c = ColumnData::new_for(DataType::Float);
        c.push(Value::Float(1.5));
        c.push(Value::Null);
        c.push(Value::Int(3));
        assert!(matches!(c, ColumnData::Val(_)));
        assert_eq!(c.value_at(0), Value::Float(1.5));
        assert_eq!(c.value_at(1), Value::Null);
        assert_eq!(c.value_at(2), Value::Int(3));
    }

    #[test]
    fn all_null_text_column_has_empty_dictionary() {
        let mut c = ColumnData::new_for(DataType::Text);
        c.push(Value::Null);
        c.push(Value::Null);
        assert_eq!(c.null_count(), 2);
        assert_eq!(c.value_at(0), Value::Null);
        if let ColumnData::Dict { dict, .. } = &c {
            assert!(dict.is_empty());
        } else {
            panic!("expected dict column");
        }
    }

    #[test]
    fn single_value_column_has_one_dict_entry() {
        let mut c = ColumnData::new_for(DataType::Text);
        for _ in 0..100 {
            c.push(Value::from("only"));
        }
        if let ColumnData::Dict { dict, codes } = &c {
            assert_eq!(dict.len(), 1);
            assert!(codes.iter().all(|&code| code == 0));
        } else {
            panic!("expected dict column");
        }
    }

    #[test]
    fn filter_keeps_masked_rows() {
        let mut c = ColumnData::new_for(DataType::Int);
        for i in 0..5 {
            c.push(Value::Int(i));
        }
        let f = c.filter(&[true, false, true, false, true]);
        assert_eq!(f.len(), 3);
        assert_eq!(f.value_at(1), Value::Int(2));
    }

    #[test]
    fn batch_filter_project_and_keys() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ]);
        let mut id = ColumnData::new_for(DataType::Int);
        let mut name = ColumnData::new_for(DataType::Text);
        for (i, n) in [(1, Some("a")), (2, None), (3, Some("b"))] {
            id.push(Value::Int(i));
            name.push(n.map(Value::from).unwrap_or(Value::Null));
        }
        let batch = ColumnBatch::new(vec![id, name]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.column_count(), 2);
        let keys = batch.extract_keys(&[1]);
        assert_eq!(keys[0], Some(vec![Value::from("a")]));
        assert_eq!(keys[1], None);
        let filtered = batch.filter(&[true, false, true]);
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered.row(1).values(), &[Value::Int(3), Value::from("b")]);
        let projected = batch.project(&[1]);
        assert_eq!(projected.row(0).values(), &[Value::from("a")]);
        let rows = batch.into_rows();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[1].values(), &[Value::Int(2), Value::Null]);
        let empty = ColumnBatch::empty_for(&schema);
        assert!(empty.is_empty());
        assert_eq!(empty.column_count(), 2);
    }

    #[test]
    fn column_meta_tracks_nulls_min_max_width() {
        let mut meta = ColumnMeta::default();
        for v in [Value::Int(5), Value::Null, Value::Int(2), Value::Int(9)] {
            meta.observe(&v);
        }
        assert_eq!(meta.null_count, 1);
        assert_eq!(meta.min, Some(Value::Int(2)));
        assert_eq!(meta.max, Some(Value::Int(9)));
        assert_eq!(meta.byte_sum, 25);
    }
}
