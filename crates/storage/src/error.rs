//! Error type for the storage layer.

use std::fmt;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name exists.
    TableNotFound(String),
    /// No column with this name exists in the schema.
    ColumnNotFound(String),
    /// A row did not match the table schema (wrong arity or incompatible type).
    SchemaMismatch {
        /// Human-readable description of the mismatch.
        detail: String,
    },
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// No index with this name exists on the table.
    IndexNotFound(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table '{name}' already exists"),
            StorageError::TableNotFound(name) => write!(f, "table '{name}' does not exist"),
            StorageError::ColumnNotFound(name) => write!(f, "column '{name}' does not exist"),
            StorageError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            StorageError::IndexExists(name) => write!(f, "index '{name}' already exists"),
            StorageError::IndexNotFound(name) => write!(f, "index '{name}' does not exist"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_descriptive() {
        assert_eq!(
            StorageError::TableExists("t".into()).to_string(),
            "table 't' already exists"
        );
        assert_eq!(
            StorageError::TableNotFound("t".into()).to_string(),
            "table 't' does not exist"
        );
        assert_eq!(
            StorageError::ColumnNotFound("c".into()).to_string(),
            "column 'c' does not exist"
        );
        assert!(StorageError::SchemaMismatch {
            detail: "arity".into()
        }
        .to_string()
        .contains("arity"));
        assert_eq!(
            StorageError::IndexExists("i".into()).to_string(),
            "index 'i' already exists"
        );
        assert_eq!(
            StorageError::IndexNotFound("i".into()).to_string(),
            "index 'i' does not exist"
        );
    }
}
