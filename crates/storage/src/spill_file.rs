//! On-disk spill runs for out-of-core execution.
//!
//! When a breaker's buffered intermediate exceeds its memory-governor grant, the
//! executor partitions the buffered rows into *spill runs*: flat files of
//! length-prefixed, tag-encoded rows. The format is deliberately simple — this is
//! scratch data that never outlives the query:
//!
//! * Each record is `[u32 payload length][payload]` (little-endian).
//! * The payload is a `u32` value count followed by one tag-encoded value each:
//!   NULL = `0`, Int = `1` + `i64` LE, Float = `2` + `f64` bit pattern LE,
//!   Bool = `3` + one byte, Text = `4` + `u32` dictionary code LE.
//! * Text is **not** written as bytes: every writer interns strings into its own
//!   [`StringDict`], spills the `u32` code, and keeps the dictionary in memory
//!   (wrapped in an `Arc` on the finished [`SpillRun`]). IMDB text columns are
//!   duplicate-heavy, so this keeps runs small and round-trips dictionary-coded
//!   columns without re-materializing strings on disk.
//!
//! Lifecycle is strictly RAII so spill files are provably cleaned up on pipeline
//! drop, query error, and worker panic:
//!
//! * [`SpillDir`] owns a per-pipeline scratch directory under `REOPT_SPILL_DIR`
//!   (default: the system temp dir) and removes it on drop.
//! * [`SpillWriter`] owns its file until [`SpillWriter::finish`] transfers
//!   ownership to the returned [`SpillRun`]; dropping an unfinished writer (e.g.
//!   a LIMIT abandoning a half-written run) deletes the file immediately.
//! * [`SpillRun`] deletes its file on drop.
//!
//! A process-wide live-file counter ([`live_spill_files`]) backs leak assertions
//! in the concurrency battery: after every query — successful, errored, or
//! panicked — the counter must return to zero.

use crate::dict::StringDict;
use crate::value::Value;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Environment variable overriding the root directory for spill scratch space.
pub const SPILL_DIR_ENV: &str = "REOPT_SPILL_DIR";

/// Process-wide count of spill files currently on disk (created but not yet
/// deleted). Used by tests to assert that no query leaks scratch files.
static LIVE_FILES: AtomicUsize = AtomicUsize::new(0);

/// Allocator for unique directory / file names within this process.
static NEXT_ID: AtomicU64 = AtomicU64::new(0);

/// Number of spill files currently live (created and not yet deleted) in this
/// process. Zero whenever no query is mid-spill.
pub fn live_spill_files() -> usize {
    LIVE_FILES.load(Ordering::SeqCst)
}

/// The root under which spill directories are created: `REOPT_SPILL_DIR` if set
/// and non-empty, otherwise the system temp directory.
pub fn spill_root() -> PathBuf {
    match std::env::var(SPILL_DIR_ENV) {
        Ok(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => std::env::temp_dir(),
    }
}

/// A scratch directory holding the spill files of one pipeline. Removed
/// (recursively, best-effort) on drop.
#[derive(Debug)]
pub struct SpillDir {
    path: PathBuf,
}

impl SpillDir {
    /// Create a fresh scratch directory under [`spill_root`].
    pub fn create() -> io::Result<Self> {
        Self::create_in(&spill_root())
    }

    /// Create a fresh scratch directory under an explicit root.
    pub fn create_in(root: &Path) -> io::Result<Self> {
        fs::create_dir_all(root)?;
        let path = root.join(format!(
            "reopt-spill-{}-{}",
            std::process::id(),
            NEXT_ID.fetch_add(1, Ordering::SeqCst)
        ));
        fs::create_dir(&path)?;
        Ok(Self { path })
    }

    /// The directory's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        // Writers and runs delete their own files; this sweeps the directory
        // itself (and anything left behind by an aborted process).
        let _ = fs::remove_dir_all(&self.path);
    }
}

/// Owns one on-disk spill file: deletes it (and decrements the live counter)
/// exactly once, on drop.
#[derive(Debug)]
struct FileGuard {
    path: PathBuf,
}

impl FileGuard {
    fn register(path: PathBuf) -> Self {
        LIVE_FILES.fetch_add(1, Ordering::SeqCst);
        Self { path }
    }
}

impl Drop for FileGuard {
    fn drop(&mut self) {
        let _ = fs::remove_file(&self.path);
        LIVE_FILES.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Streaming writer for one spill run.
#[derive(Debug)]
pub struct SpillWriter {
    file: BufWriter<File>,
    guard: FileGuard,
    dict: StringDict,
    rows: u64,
    bytes: u64,
    scratch: Vec<u8>,
}

impl SpillWriter {
    /// Create a new (empty) spill file inside `dir`.
    pub fn create(dir: &SpillDir) -> io::Result<Self> {
        let path = dir
            .path()
            .join(format!("run-{}.spill", NEXT_ID.fetch_add(1, Ordering::SeqCst)));
        let file = File::create(&path)?;
        Ok(Self {
            file: BufWriter::new(file),
            guard: FileGuard::register(path),
            dict: StringDict::new(),
            rows: 0,
            bytes: 0,
            scratch: Vec::new(),
        })
    }

    /// Append one row. Text values are interned into the writer's dictionary and
    /// spilled as `u32` codes; the dictionary itself stays in memory.
    pub fn write_row(&mut self, values: &[Value]) -> io::Result<()> {
        self.scratch.clear();
        let count = u32::try_from(values.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "row too wide to spill"))?;
        self.scratch.extend_from_slice(&count.to_le_bytes());
        for value in values {
            match value {
                Value::Null => self.scratch.push(0),
                Value::Int(i) => {
                    self.scratch.push(1);
                    self.scratch.extend_from_slice(&i.to_le_bytes());
                }
                Value::Float(f) => {
                    self.scratch.push(2);
                    self.scratch.extend_from_slice(&f.to_bits().to_le_bytes());
                }
                Value::Bool(b) => {
                    self.scratch.push(3);
                    self.scratch.push(u8::from(*b));
                }
                Value::Text(s) => {
                    self.scratch.push(4);
                    let code = self.dict.intern(s);
                    self.scratch.extend_from_slice(&code.to_le_bytes());
                }
            }
        }
        let len = u32::try_from(self.scratch.len())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "row too large to spill"))?;
        self.file.write_all(&len.to_le_bytes())?;
        self.file.write_all(&self.scratch)?;
        self.rows += 1;
        self.bytes += 4 + u64::from(len);
        Ok(())
    }

    /// Rows written so far.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Bytes written so far (including length prefixes).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Flush and seal the run. The returned [`SpillRun`] owns the file (and the
    /// in-memory dictionary needed to decode it) from here on.
    pub fn finish(mut self) -> io::Result<SpillRun> {
        self.file.flush()?;
        Ok(SpillRun {
            guard: self.guard,
            dict: Arc::new(std::mem::take(&mut self.dict)),
            rows: self.rows,
            bytes: self.bytes,
        })
    }
}

/// A sealed, readable spill run. Deletes its file on drop.
#[derive(Debug)]
pub struct SpillRun {
    guard: FileGuard,
    dict: Arc<StringDict>,
    rows: u64,
    bytes: u64,
}

impl SpillRun {
    /// Number of rows in the run.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Size of the run on disk in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// The in-memory dictionary that decodes this run's text codes.
    pub fn dict(&self) -> &Arc<StringDict> {
        &self.dict
    }

    /// Open a streaming reader over the run's rows.
    pub fn read(&self) -> io::Result<SpillReader> {
        let file = File::open(&self.guard.path)?;
        Ok(SpillReader {
            file: BufReader::new(file),
            dict: Arc::clone(&self.dict),
            remaining: self.rows,
            scratch: Vec::new(),
        })
    }
}

/// Streaming reader over a [`SpillRun`].
#[derive(Debug)]
pub struct SpillReader {
    file: BufReader<File>,
    dict: Arc<StringDict>,
    remaining: u64,
    scratch: Vec<u8>,
}

impl SpillReader {
    /// Decode the next row, or `None` once the run is exhausted.
    pub fn next_row(&mut self) -> io::Result<Option<Vec<Value>>> {
        if self.remaining == 0 {
            return Ok(None);
        }
        self.remaining -= 1;
        let mut len_buf = [0u8; 4];
        self.file.read_exact(&mut len_buf)?;
        let len = u32::from_le_bytes(len_buf) as usize;
        self.scratch.resize(len, 0);
        self.file.read_exact(&mut self.scratch)?;
        let buf = &self.scratch;
        if len < 4 {
            return Err(corrupt("record shorter than its value count"));
        }
        let count = u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]) as usize;
        let mut pos = 4usize;
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = *buf.get(pos).ok_or_else(|| corrupt("truncated value tag"))?;
            pos += 1;
            let value = match tag {
                0 => Value::Null,
                1 => {
                    let raw = read_8(buf, &mut pos)?;
                    Value::Int(i64::from_le_bytes(raw))
                }
                2 => {
                    let raw = read_8(buf, &mut pos)?;
                    Value::Float(f64::from_bits(u64::from_le_bytes(raw)))
                }
                3 => {
                    let b = *buf.get(pos).ok_or_else(|| corrupt("truncated bool"))?;
                    pos += 1;
                    Value::Bool(b != 0)
                }
                4 => {
                    let raw: [u8; 4] = buf
                        .get(pos..pos + 4)
                        .ok_or_else(|| corrupt("truncated text code"))?
                        .try_into()
                        .expect("slice of length 4");
                    pos += 4;
                    let code = u32::from_le_bytes(raw);
                    if code as usize >= self.dict.len() {
                        return Err(corrupt("text code outside the run's dictionary"));
                    }
                    Value::Text(self.dict.get(code).to_string())
                }
                _ => return Err(corrupt("unknown value tag")),
            };
            values.push(value);
        }
        Ok(Some(values))
    }
}

fn read_8(buf: &[u8], pos: &mut usize) -> io::Result<[u8; 8]> {
    let raw: [u8; 8] = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| corrupt("truncated 8-byte value"))?
        .try_into()
        .expect("slice of length 8");
    *pos += 8;
    Ok(raw)
}

fn corrupt(detail: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt spill run: {detail}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_rows() -> Vec<Vec<Value>> {
        vec![
            vec![
                Value::Int(42),
                Value::from("drama"),
                Value::Float(1.5),
                Value::Bool(true),
                Value::Null,
            ],
            vec![
                Value::Int(-7),
                Value::from("drama"),
                Value::Float(-0.0),
                Value::Bool(false),
                Value::from(""),
            ],
        ]
    }

    #[test]
    fn round_trips_all_value_kinds() {
        let dir = SpillDir::create().unwrap();
        let mut writer = SpillWriter::create(&dir).unwrap();
        for row in sample_rows() {
            writer.write_row(&row).unwrap();
        }
        let run = writer.finish().unwrap();
        assert_eq!(run.rows(), 2);
        let mut reader = run.read().unwrap();
        for expected in sample_rows() {
            assert_eq!(reader.next_row().unwrap().unwrap(), expected);
        }
        assert!(reader.next_row().unwrap().is_none());
    }

    #[test]
    fn text_spills_as_dictionary_codes() {
        let dir = SpillDir::create().unwrap();
        let mut writer = SpillWriter::create(&dir).unwrap();
        // 1000 copies of two distinct strings: the run must stay tiny because only
        // u32 codes hit the disk.
        for i in 0..1000 {
            let s = if i % 2 == 0 { "comedy" } else { "documentary" };
            writer.write_row(&[Value::from(s)]).unwrap();
        }
        let run = writer.finish().unwrap();
        assert_eq!(run.dict().len(), 2);
        // 4 (len) + 4 (count) + 1 (tag) + 4 (code) = 13 bytes per row.
        assert_eq!(run.bytes(), 13 * 1000);
        let mut reader = run.read().unwrap();
        assert_eq!(reader.next_row().unwrap().unwrap(), vec![Value::from("comedy")]);
    }

    #[test]
    fn empty_run_round_trips() {
        let dir = SpillDir::create().unwrap();
        let writer = SpillWriter::create(&dir).unwrap();
        let run = writer.finish().unwrap();
        assert_eq!(run.rows(), 0);
        assert_eq!(run.bytes(), 0);
        assert!(run.read().unwrap().next_row().unwrap().is_none());
    }

    #[test]
    fn files_are_deleted_on_drop_even_without_finish() {
        let before = live_spill_files();
        let dir = SpillDir::create().unwrap();
        let dir_path = dir.path().to_path_buf();
        {
            let mut abandoned = SpillWriter::create(&dir).unwrap();
            abandoned.write_row(&[Value::Int(1)]).unwrap();
            let finished = {
                let mut w = SpillWriter::create(&dir).unwrap();
                w.write_row(&[Value::Int(2)]).unwrap();
                w.finish().unwrap()
            };
            assert_eq!(live_spill_files(), before + 2);
            drop(finished);
            assert_eq!(live_spill_files(), before + 1);
            // `abandoned` (a half-written run) drops here without finish().
            drop(abandoned);
            assert_eq!(live_spill_files(), before);
        }
        drop(dir);
        assert!(!dir_path.exists(), "spill dir must be removed on drop");
    }

    #[test]
    fn create_in_uses_the_given_root() {
        let root = std::env::temp_dir().join(format!("reopt-spill-root-{}", std::process::id()));
        let dir = SpillDir::create_in(&root).unwrap();
        assert!(dir.path().starts_with(&root));
        drop(dir);
        let _ = fs::remove_dir_all(&root);
    }
}
