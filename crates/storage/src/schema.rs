//! Table and intermediate-result schemas.
//!
//! A [`Schema`] is an ordered list of [`Column`]s. Columns in intermediate results
//! produced by joins carry an optional *qualifier* (the table alias they came from), so
//! `ci.movie_id` and `mk.movie_id` remain distinguishable after a join — exactly the
//! lookup the executor and the re-optimization rewriter need.

use crate::error::StorageError;
use crate::value::DataType;
use std::fmt;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lowercase by convention).
    name: String,
    /// Data type.
    data_type: DataType,
    /// Whether NULLs are allowed. Only used by statistics and data generators.
    nullable: bool,
    /// Optional qualifier (table alias) for columns of intermediate results.
    qualifier: Option<String>,
}

impl Column {
    /// Create a nullable, unqualified column.
    pub fn new(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            name: name.into().to_ascii_lowercase(),
            data_type,
            nullable: true,
            qualifier: None,
        }
    }

    /// Create a NOT NULL column.
    pub fn not_null(name: impl Into<String>, data_type: DataType) -> Self {
        Self {
            nullable: false,
            ..Self::new(name, data_type)
        }
    }

    /// Return a copy of this column carrying a qualifier (table alias).
    pub fn with_qualifier(&self, qualifier: impl Into<String>) -> Self {
        Self {
            qualifier: Some(qualifier.into().to_ascii_lowercase()),
            ..self.clone()
        }
    }

    /// Column name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column data type.
    pub fn data_type(&self) -> DataType {
        self.data_type
    }

    /// Whether the column admits NULLs.
    pub fn is_nullable(&self) -> bool {
        self.nullable
    }

    /// The qualifier (table alias), if any.
    pub fn qualifier(&self) -> Option<&str> {
        self.qualifier.as_deref()
    }

    /// Fully qualified name, `alias.column` or just `column`.
    pub fn qualified_name(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether this column matches a reference `(qualifier, name)`.
    ///
    /// A reference without a qualifier matches any column with the right name; a
    /// reference with a qualifier requires the qualifiers to match too.
    pub fn matches(&self, qualifier: Option<&str>, name: &str) -> bool {
        if !self.name.eq_ignore_ascii_case(name) {
            return false;
        }
        match qualifier {
            None => true,
            Some(q) => self
                .qualifier
                .as_deref()
                .map(|own| own.eq_ignore_ascii_case(q))
                .unwrap_or(false),
        }
    }
}

impl fmt::Display for Column {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.qualified_name(), self.data_type)
    }
}

/// An ordered list of columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Create a schema from a list of columns.
    pub fn new(columns: Vec<Column>) -> Self {
        Self { columns }
    }

    /// An empty schema.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column at a given ordinal position.
    pub fn column(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Find the ordinal position of a column by (optional qualifier, name).
    ///
    /// Returns an error if the column does not exist or the reference is ambiguous.
    pub fn index_of(&self, qualifier: Option<&str>, name: &str) -> Result<usize, StorageError> {
        let mut matches = self
            .columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.matches(qualifier, name));
        match (matches.next(), matches.next()) {
            (Some((idx, _)), None) => Ok(idx),
            (Some(_), Some(_)) => Err(StorageError::ColumnNotFound(format!(
                "ambiguous column reference '{}'",
                display_ref(qualifier, name)
            ))),
            (None, _) => Err(StorageError::ColumnNotFound(display_ref(qualifier, name))),
        }
    }

    /// Find the ordinal position of an unqualified column name.
    pub fn index_of_unqualified(&self, name: &str) -> Result<usize, StorageError> {
        self.index_of(None, name)
    }

    /// Whether a reference resolves to a column in this schema.
    pub fn contains(&self, qualifier: Option<&str>, name: &str) -> bool {
        self.columns.iter().any(|c| c.matches(qualifier, name))
    }

    /// Return a copy of this schema with every column qualified by `alias`.
    pub fn qualified(&self, alias: &str) -> Schema {
        Schema::new(
            self.columns
                .iter()
                .map(|c| c.with_qualifier(alias))
                .collect(),
        )
    }

    /// Concatenate two schemas (the schema of a join result).
    pub fn join(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema::new(columns)
    }

    /// Return a schema consisting of the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema::new(
            indices
                .iter()
                .filter_map(|&i| self.columns.get(i).cloned())
                .collect(),
        )
    }

    /// Append a column, returning its ordinal.
    pub fn push(&mut self, column: Column) -> usize {
        self.columns.push(column);
        self.columns.len() - 1
    }

    /// Average tuple width in bytes implied by the column types; used by the cost model
    /// before real statistics exist.
    pub fn nominal_width(&self) -> usize {
        self.columns
            .iter()
            .map(|c| match c.data_type() {
                DataType::Int | DataType::Float => 8,
                DataType::Bool => 1,
                DataType::Text => 32,
            })
            .sum()
    }
}

fn display_ref(qualifier: Option<&str>, name: &str) -> String {
    match qualifier {
        Some(q) => format!("{q}.{name}"),
        None => name.to_string(),
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let cols: Vec<String> = self.columns.iter().map(|c| c.to_string()).collect();
        write!(f, "({})", cols.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_schema() -> Schema {
        Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("title", DataType::Text),
            Column::new("production_year", DataType::Int),
        ])
    }

    #[test]
    fn index_of_unqualified_column() {
        let schema = movie_schema();
        assert_eq!(schema.index_of(None, "title").unwrap(), 1);
        assert_eq!(schema.index_of(None, "TITLE").unwrap(), 1);
        assert!(schema.index_of(None, "nope").is_err());
    }

    #[test]
    fn qualified_lookup_requires_matching_alias() {
        let schema = movie_schema().qualified("t");
        assert_eq!(schema.index_of(Some("t"), "id").unwrap(), 0);
        assert!(schema.index_of(Some("x"), "id").is_err());
        // Unqualified reference still matches a qualified column.
        assert_eq!(schema.index_of(None, "id").unwrap(), 0);
    }

    #[test]
    fn ambiguous_reference_detected() {
        let joined = movie_schema().qualified("a").join(&movie_schema().qualified("b"));
        let err = joined.index_of(None, "id").unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
        assert_eq!(joined.index_of(Some("b"), "id").unwrap(), 3);
    }

    #[test]
    fn join_concatenates_columns() {
        let a = movie_schema().qualified("a");
        let b = movie_schema().qualified("b");
        let j = a.join(&b);
        assert_eq!(j.len(), 6);
        assert_eq!(j.column(0).unwrap().qualified_name(), "a.id");
        assert_eq!(j.column(3).unwrap().qualified_name(), "b.id");
    }

    #[test]
    fn project_selects_columns() {
        let schema = movie_schema();
        let p = schema.project(&[2, 0]);
        assert_eq!(p.len(), 2);
        assert_eq!(p.column(0).unwrap().name(), "production_year");
        assert_eq!(p.column(1).unwrap().name(), "id");
    }

    #[test]
    fn nominal_width_sums_types() {
        assert_eq!(movie_schema().nominal_width(), 8 + 32 + 8);
    }

    #[test]
    fn column_display_and_matches() {
        let c = Column::new("id", DataType::Int).with_qualifier("t");
        assert_eq!(c.qualified_name(), "t.id");
        assert!(c.matches(Some("T"), "ID"));
        assert!(!c.matches(Some("u"), "id"));
        assert!(c.matches(None, "id"));
        assert_eq!(c.to_string(), "t.id int");
    }

    #[test]
    fn push_appends_column() {
        let mut schema = movie_schema();
        let idx = schema.push(Column::new("kind_id", DataType::Int));
        assert_eq!(idx, 3);
        assert_eq!(schema.len(), 4);
    }
}
