//! Scalar values and data types.
//!
//! The Join Order Benchmark only needs integers, strings and the occasional numeric
//! column, so the type system is deliberately small. `Value` implements a *total* order
//! and a consistent `Hash` so it can be used directly as a key in hash-join tables,
//! B-tree indexes and most-common-value statistics. NULL sorts before every non-NULL
//! value and is never equal to anything in SQL comparison semantics (see
//! [`Value::sql_eq`]), but compares equal to itself for the purposes of grouping and
//! indexing, mirroring how real engines separate "comparison" from "identity".

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Supported column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE-754 float.
    Float,
    /// UTF-8 string.
    Text,
    /// Boolean.
    Bool,
}

impl DataType {
    /// Whether a value of this type can be stored in a column of type `other`
    /// without loss that matters to the engine (ints are accepted by float columns).
    pub fn coercible_to(self, other: DataType) -> bool {
        self == other || (self == DataType::Int && other == DataType::Float)
    }

    /// Short lowercase name, used in EXPLAIN output and error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int => "int",
            DataType::Float => "float",
            DataType::Text => "text",
            DataType::Bool => "bool",
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 string.
    Text(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The data type of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bool(_) => Some(DataType::Bool),
        }
    }

    /// Whether this value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interpret the value as an integer if possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            _ => None,
        }
    }

    /// Interpret the value as a float if possible (ints are widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Interpret the value as a string slice if it is text.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Interpret the value as a boolean if possible.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// SQL three-valued equality: NULL = anything is unknown (`None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }

    /// SQL three-valued comparison: NULL compared to anything is unknown (`None`).
    pub fn sql_cmp(&self, other: &Value) -> Option<Ordering> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other))
    }

    /// Total order over all values, used for sorting, B-tree indexes and histograms.
    ///
    /// NULL < Bool < numeric (Int/Float compared numerically) < Text.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Bool(_), _) => Ordering::Less,
            (_, Bool(_)) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Int(_) | Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_) | Float(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }

    /// A coarse "width" in bytes used by the cost model (PostgreSQL tracks average
    /// tuple widths similarly).
    pub fn width(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Bool(_) => 1,
            Value::Text(s) => s.len().max(1),
        }
    }

    /// Render the value as a SQL literal (used when re-optimization rewrites queries).
    pub fn to_sql_literal(&self) -> String {
        match self {
            Value::Null => "NULL".to_string(),
            Value::Int(i) => i.to_string(),
            Value::Float(f) => {
                if f.fract() == 0.0 && f.abs() < 1e15 {
                    format!("{f:.1}")
                } else {
                    format!("{f}")
                }
            }
            Value::Bool(b) => if *b { "TRUE" } else { "FALSE" }.to_string(),
            Value::Text(s) => format!("'{}'", s.replace('\'', "''")),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Ints and floats that compare equal must hash equally (e.g. 2 and 2.0),
            // so hash every numeric through its f64 bit pattern when it is integral.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn data_type_of_values() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::from("x").data_type(), Some(DataType::Text));
        assert_eq!(Value::Bool(true).data_type(), Some(DataType::Bool));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn coercion_rules() {
        assert!(DataType::Int.coercible_to(DataType::Float));
        assert!(!DataType::Float.coercible_to(DataType::Int));
        assert!(DataType::Text.coercible_to(DataType::Text));
        assert!(!DataType::Text.coercible_to(DataType::Int));
    }

    #[test]
    fn total_order_across_types() {
        let mut values = vec![
            Value::from("abc"),
            Value::Int(3),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
            Value::Bool(false),
        ];
        values.sort();
        assert_eq!(
            values,
            vec![
                Value::Null,
                Value::Bool(false),
                Value::Bool(true),
                Value::Float(2.5),
                Value::Int(3),
                Value::from("abc"),
            ]
        );
    }

    #[test]
    fn numeric_cross_type_equality_and_hash() {
        let a = Value::Int(2);
        let b = Value::Float(2.0);
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn sql_eq_is_three_valued() {
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Null), None);
        assert_eq!(Value::Null.sql_eq(&Value::Null), None);
    }

    #[test]
    fn sql_cmp_orders_numbers() {
        assert_eq!(
            Value::Int(1).sql_cmp(&Value::Float(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), None);
    }

    #[test]
    fn sql_literal_rendering() {
        assert_eq!(Value::Int(5).to_sql_literal(), "5");
        assert_eq!(Value::from("O'Brien").to_sql_literal(), "'O''Brien'");
        assert_eq!(Value::Null.to_sql_literal(), "NULL");
        assert_eq!(Value::Bool(true).to_sql_literal(), "TRUE");
        assert_eq!(Value::Float(2.0).to_sql_literal(), "2.0");
    }

    #[test]
    fn conversions_from_rust_types() {
        assert_eq!(Value::from(3i32), Value::Int(3));
        assert_eq!(Value::from(Some(4i64)), Value::Int(4));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from("x".to_string()), Value::Text("x".into()));
    }

    #[test]
    fn widths_are_reasonable() {
        assert_eq!(Value::Int(1).width(), 8);
        assert_eq!(Value::from("hello").width(), 5);
        assert_eq!(Value::Null.width(), 1);
    }

    #[test]
    fn as_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::from("s").as_str(), Some("s"));
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::from("s").as_int(), None);
    }
}
