//! # reopt-storage
//!
//! In-memory storage substrate for the re-optimization reproduction.
//!
//! The paper runs all of the Join Order Benchmark with every table and index cached in
//! memory ("all tables and indexes are cached in memory", Section III-A), so the storage
//! layer here is an in-memory **columnar** store:
//!
//! * [`Value`] / [`DataType`] — the scalar type system (64-bit integers, 64-bit floats,
//!   UTF-8 text, booleans, NULL).
//! * [`Schema`] / [`Column`] — table and intermediate-result schemas with qualified
//!   column lookup.
//! * [`Row`] — a materialized tuple (the decoded form handed to breakers and results).
//! * [`ColumnData`] / [`ColumnBatch`] — typed column vectors with validity
//!   [`Bitmap`]s, dictionary-coded text ([`StringDict`]) and the columnar batch that
//!   scans produce and filter/project/hash-key kernels consume.
//! * [`Table`] — one column chunk per schema column plus secondary indexes;
//!   per-column [`ColumnMeta`] (NULL count, min/max, byte width) is maintained on
//!   append for ANALYZE and the cost model.
//! * [`HashIndex`] / [`BTreeIndex`] — secondary indexes used by the optimizer for
//!   index-nested-loop access paths (the paper adds foreign-key indexes to make access
//!   path selection harder, Section III-A).
//! * [`Storage`] — the collection of named tables, including temporary tables created by
//!   the re-optimization controller.

pub mod column;
pub mod dict;
pub mod error;
pub mod index;
pub mod row;
pub mod schema;
pub mod spill_file;
pub mod table;
pub mod value;

pub use column::{Bitmap, ColumnBatch, ColumnData, ColumnMeta};
pub use dict::{StringDict, NULL_CODE};
pub use error::StorageError;
pub use index::{BTreeIndex, HashIndex, Index, IndexKind};
pub use row::{Row, RowId};
pub use schema::{Column, Schema};
pub use spill_file::{live_spill_files, SpillDir, SpillReader, SpillRun, SpillWriter};
pub use table::Table;
pub use value::{DataType, Value};

use std::collections::BTreeMap;
use std::sync::Arc;

/// The set of all tables known to the engine, addressed by (case-insensitive) name.
///
/// Tables are reference-counted so a `Storage` clone is a cheap copy-on-write
/// snapshot: concurrent sessions share the same immutable table chunks, and the
/// parallel executor can hand `'static` scan jobs to a resident worker pool
/// without borrowing from the storage map. Mutation goes through
/// [`Storage::table_mut`], which unshares the one table being written.
///
/// Temporary tables created by the re-optimization controller live here too; they are
/// flagged so they can be dropped when a re-optimized query finishes.
#[derive(Debug, Default, Clone)]
pub struct Storage {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Storage {
    /// Create an empty storage area.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a new table. Fails if a table with the same name already exists.
    pub fn create_table(&mut self, table: Table) -> Result<(), StorageError> {
        let key = normalize(table.name());
        if self.tables.contains_key(&key) {
            return Err(StorageError::TableExists(table.name().to_string()));
        }
        self.tables.insert(key, Arc::new(table));
        Ok(())
    }

    /// Register or replace a table (used for temporary tables during re-optimization).
    pub fn create_or_replace_table(&mut self, table: Table) {
        self.tables.insert(normalize(table.name()), Arc::new(table));
    }

    /// Remove a table. Fails if it does not exist.
    pub fn drop_table(&mut self, name: &str) -> Result<Table, StorageError> {
        self.tables
            .remove(&normalize(name))
            .map(|arc| Arc::try_unwrap(arc).unwrap_or_else(|shared| (*shared).clone()))
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> Result<&Table, StorageError> {
        self.tables
            .get(&normalize(name))
            .map(|arc| arc.as_ref())
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Look up the shared handle for a table, for executors that need to keep the
    /// chunk alive beyond the borrow (e.g. `'static` worker-pool jobs).
    pub fn table_arc(&self, name: &str) -> Result<Arc<Table>, StorageError> {
        self.tables
            .get(&normalize(name))
            .cloned()
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Look up a table mutably by name, unsharing it if other snapshots hold it.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StorageError> {
        self.tables
            .get_mut(&normalize(name))
            .map(Arc::make_mut)
            .ok_or_else(|| StorageError::TableNotFound(name.to_string()))
    }

    /// Whether a table with this name exists.
    pub fn contains_table(&self, name: &str) -> bool {
        self.tables.contains_key(&normalize(name))
    }

    /// Iterate over all tables in name order.
    pub fn tables(&self) -> impl Iterator<Item = &Table> {
        self.tables.values().map(|arc| arc.as_ref())
    }

    /// Names of all tables in name order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.values().map(|t| t.name().to_string()).collect()
    }

    /// Total number of tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Total number of rows across all tables (useful for memory accounting in tests).
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(|t| t.row_count()).sum()
    }

    /// Drop every table flagged as temporary. Returns the names of dropped tables.
    pub fn drop_temporary_tables(&mut self) -> Vec<String> {
        let names: Vec<String> = self
            .tables
            .values()
            .filter(|t| t.is_temporary())
            .map(|t| t.name().to_string())
            .collect();
        for name in &names {
            self.tables.remove(&normalize(name));
        }
        names
    }
}

fn normalize(name: &str) -> String {
    name.to_ascii_lowercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table(name: &str) -> Table {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::new("name", DataType::Text),
        ]);
        Table::new(name, schema)
    }

    #[test]
    fn create_and_lookup_table() {
        let mut storage = Storage::new();
        storage.create_table(sample_table("title")).unwrap();
        assert!(storage.contains_table("title"));
        assert!(storage.contains_table("TITLE"));
        assert_eq!(storage.table("title").unwrap().name(), "title");
        assert_eq!(storage.table_count(), 1);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut storage = Storage::new();
        storage.create_table(sample_table("title")).unwrap();
        let err = storage.create_table(sample_table("TITLE")).unwrap_err();
        assert!(matches!(err, StorageError::TableExists(_)));
    }

    #[test]
    fn drop_table_removes_it() {
        let mut storage = Storage::new();
        storage.create_table(sample_table("name")).unwrap();
        storage.drop_table("name").unwrap();
        assert!(!storage.contains_table("name"));
        assert!(matches!(
            storage.table("name"),
            Err(StorageError::TableNotFound(_))
        ));
    }

    #[test]
    fn missing_table_errors() {
        let storage = Storage::new();
        assert!(matches!(
            storage.table("nope"),
            Err(StorageError::TableNotFound(_))
        ));
    }

    #[test]
    fn drop_temporary_tables_only_drops_temps() {
        let mut storage = Storage::new();
        storage.create_table(sample_table("base")).unwrap();
        let mut temp = sample_table("temp1");
        temp.set_temporary(true);
        storage.create_table(temp).unwrap();
        let dropped = storage.drop_temporary_tables();
        assert_eq!(dropped, vec!["temp1".to_string()]);
        assert!(storage.contains_table("base"));
        assert!(!storage.contains_table("temp1"));
    }

    #[test]
    fn create_or_replace_overwrites() {
        let mut storage = Storage::new();
        storage.create_table(sample_table("t")).unwrap();
        let schema = Schema::new(vec![Column::new("x", DataType::Float)]);
        storage.create_or_replace_table(Table::new("t", schema));
        assert_eq!(storage.table("t").unwrap().schema().len(), 1);
    }

    #[test]
    fn total_rows_counts_all_tables() {
        let mut storage = Storage::new();
        let mut a = sample_table("a");
        a.push_row(Row::from_values(vec![Value::Int(1), Value::from("x")]))
            .unwrap();
        let mut b = sample_table("b");
        b.push_row(Row::from_values(vec![Value::Int(2), Value::from("y")]))
            .unwrap();
        b.push_row(Row::from_values(vec![Value::Int(3), Value::from("z")]))
            .unwrap();
        storage.create_table(a).unwrap();
        storage.create_table(b).unwrap();
        assert_eq!(storage.total_rows(), 3);
    }
}
