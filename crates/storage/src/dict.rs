//! Per-column string dictionaries.
//!
//! IMDB text columns are duplicate-heavy (genres, country codes, role names, keyword
//! text), so text columns store `u32` *codes* into an append-only [`StringDict`]
//! instead of cloning strings row by row. The dictionary is insertion-ordered: code
//! `n` is the `n`-th distinct string ever appended to the column, and codes are
//! stable for the lifetime of the table (nothing is ever deleted, matching the
//! engine's append-only heaps). Rows holding SQL NULL store the sentinel
//! [`NULL_CODE`] and no dictionary entry.
//!
//! Besides decoding, the dictionary doubles as column metadata: it knows the exact
//! distinct count (`len`) and the per-code occurrence count, which ANALYZE reads
//! directly instead of re-hashing every row (see `reopt-catalog`).

use std::collections::HashMap;

/// The code stored for SQL NULL. Real codes are dense from 0, so a column would need
/// ~4.3 billion distinct strings before colliding with the sentinel.
pub const NULL_CODE: u32 = u32::MAX;

/// An append-only, insertion-ordered dictionary of distinct strings.
#[derive(Debug, Clone, Default)]
pub struct StringDict {
    /// Code -> string, dense from 0.
    values: Vec<String>,
    /// String -> code.
    intern: HashMap<String, u32>,
    /// Code -> number of rows currently holding it (append-only, so this is exact).
    counts: Vec<u64>,
}

impl StringDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct strings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the dictionary holds no strings.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Intern one occurrence of `s`: return its code, assigning the next dense code if
    /// the string is new, and bump its occurrence count either way.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.intern.get(s) {
            self.counts[code as usize] += 1;
            return code;
        }
        let code = u32::try_from(self.values.len()).expect("dictionary overflow");
        assert_ne!(code, NULL_CODE, "dictionary exhausted the u32 code space");
        self.values.push(s.to_string());
        self.intern.insert(s.to_string(), code);
        self.counts.push(1);
        code
    }

    /// The code of `s`, if it has ever been interned. Does not touch counts.
    pub fn lookup(&self, s: &str) -> Option<u32> {
        self.intern.get(s).copied()
    }

    /// The string behind a code. Panics on [`NULL_CODE`] or an unassigned code.
    pub fn get(&self, code: u32) -> &str {
        &self.values[code as usize]
    }

    /// All strings in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }

    /// Occurrence count per code (same indexing as [`StringDict::values`]).
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes_in_first_seen_order() {
        let mut d = StringDict::new();
        assert_eq!(d.intern("drama"), 0);
        assert_eq!(d.intern("comedy"), 1);
        assert_eq!(d.intern("drama"), 0);
        assert_eq!(d.len(), 2);
        assert_eq!(d.get(0), "drama");
        assert_eq!(d.get(1), "comedy");
        assert_eq!(d.counts(), &[2, 1]);
    }

    #[test]
    fn lookup_without_interning() {
        let mut d = StringDict::new();
        d.intern("x");
        assert_eq!(d.lookup("x"), Some(0));
        assert_eq!(d.lookup("y"), None);
        assert_eq!(d.counts(), &[1]);
    }

    #[test]
    fn empty_strings_are_ordinary_entries() {
        let mut d = StringDict::new();
        assert_eq!(d.intern(""), 0);
        assert_eq!(d.intern("a"), 1);
        assert_eq!(d.intern(""), 0);
        assert_eq!(d.get(0), "");
        assert_eq!(d.counts(), &[2, 1]);
    }

    #[test]
    fn high_cardinality_overflows_a_u16_code_space() {
        // The ISSUE's u16-overflow edge case: > 65 536 distinct strings must keep
        // round-tripping, which is why codes are u32.
        let mut d = StringDict::new();
        let n = 70_000u32;
        for i in 0..n {
            assert_eq!(d.intern(&format!("s{i}")), i);
        }
        assert_eq!(d.len(), n as usize);
        assert_eq!(d.get(65_536), "s65536");
        assert_eq!(d.lookup("s69999"), Some(69_999));
        assert!(d.counts().iter().all(|&c| c == 1));
    }
}
