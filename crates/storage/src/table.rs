//! Tables: a schema, a heap of rows, and secondary indexes.

use crate::error::StorageError;
use crate::index::{Index, IndexKind};
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    indexes: BTreeMap<String, Index>,
    temporary: bool,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self {
            name: name.into().to_ascii_lowercase(),
            schema,
            rows: Vec::new(),
            indexes: BTreeMap::new(),
            temporary: false,
        }
    }

    /// Create a table pre-populated with rows (no schema validation per row; use
    /// [`Table::push_row`] when validation matters).
    pub fn with_rows(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        let mut table = Self::new(name, schema);
        table.rows = rows;
        table
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether this table is a temporary table created during re-optimization.
    pub fn is_temporary(&self) -> bool {
        self.temporary
    }

    /// Mark or unmark the table as temporary.
    pub fn set_temporary(&mut self, temporary: bool) {
        self.temporary = temporary;
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// All rows, in insertion (row id) order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// A single row by id.
    pub fn row(&self, id: RowId) -> Option<&Row> {
        self.rows.get(id)
    }

    /// Average row width in bytes over a sample of rows (used by ANALYZE / cost model).
    pub fn average_row_width(&self) -> usize {
        if self.rows.is_empty() {
            return self.schema.nominal_width();
        }
        let sample = self.rows.len().min(1024);
        let total: usize = self.rows.iter().take(sample).map(Row::width).sum();
        (total / sample).max(1)
    }

    /// Validate a row against the schema and append it, maintaining all indexes.
    pub fn push_row(&mut self, row: Row) -> Result<RowId, StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError::SchemaMismatch {
                detail: format!(
                    "table '{}' expects {} columns, row has {}",
                    self.name,
                    self.schema.len(),
                    row.len()
                ),
            });
        }
        for (idx, value) in row.values().iter().enumerate() {
            if let Some(value_type) = value.data_type() {
                let column = self.schema.column(idx).expect("column exists");
                if !value_type.coercible_to(column.data_type()) {
                    return Err(StorageError::SchemaMismatch {
                        detail: format!(
                            "column '{}' of table '{}' has type {}, got {}",
                            column.name(),
                            self.name,
                            column.data_type(),
                            value_type
                        ),
                    });
                }
            }
        }
        let row_id = self.rows.len();
        for index in self.indexes.values_mut() {
            index.insert(row.value(index.column()), row_id);
        }
        self.rows.push(row);
        Ok(row_id)
    }

    /// Append many rows with validation.
    pub fn push_rows(&mut self, rows: Vec<Row>) -> Result<(), StorageError> {
        self.rows.reserve(rows.len());
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Append a row without validation (bulk-load path used by data generators).
    pub fn push_row_unchecked(&mut self, row: Row) -> RowId {
        let row_id = self.rows.len();
        for index in self.indexes.values_mut() {
            index.insert(row.value(index.column()), row_id);
        }
        self.rows.push(row);
        row_id
    }

    /// Create an index over a column (by name). Fails if the name is taken or the column
    /// does not exist.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        column_name: &str,
        kind: IndexKind,
    ) -> Result<(), StorageError> {
        let index_name = index_name.into().to_ascii_lowercase();
        if self.indexes.contains_key(&index_name) {
            return Err(StorageError::IndexExists(index_name));
        }
        let column = self.schema.index_of(None, column_name)?;
        let index = Index::build(kind, index_name.clone(), column, self.rows.iter());
        self.indexes.insert(index_name, index);
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, index_name: &str) -> Result<(), StorageError> {
        self.indexes
            .remove(&index_name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::IndexNotFound(index_name.to_string()))
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> impl Iterator<Item = &Index> {
        self.indexes.values()
    }

    /// The first index (if any) over the given column ordinal, preferring B-trees when
    /// `need_range` is set.
    pub fn index_on_column(&self, column: usize, need_range: bool) -> Option<&Index> {
        let mut fallback = None;
        for index in self.indexes.values() {
            if index.column() != column {
                continue;
            }
            if need_range {
                if index.supports_range() {
                    return Some(index);
                }
            } else {
                if matches!(index.kind(), IndexKind::Hash) {
                    return Some(index);
                }
                fallback = Some(index);
            }
        }
        if need_range {
            None
        } else {
            fallback
        }
    }

    /// Whether any index exists on the given column ordinal.
    pub fn has_index_on(&self, column: usize) -> bool {
        self.indexes.values().any(|i| i.column() == column)
    }

    /// Total number of distinct non-NULL values in a column, computed exactly.
    /// Used by tests and by the perfect-cardinality oracle; ANALYZE uses sampling.
    pub fn exact_distinct(&self, column: usize) -> usize {
        let mut seen: std::collections::HashSet<&Value> = std::collections::HashSet::new();
        for row in &self.rows {
            let v = row.value(column);
            if !v.is_null() {
                seen.insert(v);
            }
        }
        seen.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn title_table() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("title", DataType::Text),
            Column::new("production_year", DataType::Int),
        ]);
        Table::new("title", schema)
    }

    #[test]
    fn push_row_validates_arity() {
        let mut t = title_table();
        let err = t
            .push_row(Row::from_values(vec![Value::Int(1)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn push_row_validates_types() {
        let mut t = title_table();
        let err = t
            .push_row(Row::from_values(vec![
                Value::from("not an int"),
                Value::from("x"),
                Value::Int(2000),
            ]))
            .unwrap_err();
        assert!(err.to_string().contains("has type int"));
    }

    #[test]
    fn push_row_accepts_nulls_and_int_to_float() {
        let schema = Schema::new(vec![Column::new("score", DataType::Float)]);
        let mut t = Table::new("scores", schema);
        t.push_row(Row::from_values(vec![Value::Int(3)])).unwrap();
        t.push_row(Row::from_values(vec![Value::Null])).unwrap();
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn index_creation_and_maintenance() {
        let mut t = title_table();
        for i in 0..10 {
            t.push_row(Row::from_values(vec![
                Value::Int(i),
                Value::from(format!("movie {i}")),
                Value::Int(1990 + (i % 5)),
            ]))
            .unwrap();
        }
        t.create_index("title_year", "production_year", IndexKind::BTree)
            .unwrap();
        // New inserts must be reflected by the index.
        t.push_row(Row::from_values(vec![
            Value::Int(10),
            Value::from("movie 10"),
            Value::Int(1991),
        ]))
        .unwrap();
        let idx = t.index_on_column(2, true).unwrap();
        assert_eq!(idx.lookup(&Value::Int(1991)).len(), 3);
        assert!(t.has_index_on(2));
        assert!(!t.has_index_on(1));
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut t = title_table();
        t.create_index("ix", "id", IndexKind::Hash).unwrap();
        assert!(matches!(
            t.create_index("ix", "id", IndexKind::Hash),
            Err(StorageError::IndexExists(_))
        ));
        t.drop_index("ix").unwrap();
        assert!(matches!(
            t.drop_index("ix"),
            Err(StorageError::IndexNotFound(_))
        ));
    }

    #[test]
    fn index_on_column_prefers_right_kind() {
        let mut t = title_table();
        t.create_index("hash_id", "id", IndexKind::Hash).unwrap();
        t.create_index("btree_id", "id", IndexKind::BTree).unwrap();
        assert_eq!(
            t.index_on_column(0, false).unwrap().kind(),
            IndexKind::Hash
        );
        assert_eq!(t.index_on_column(0, true).unwrap().kind(), IndexKind::BTree);
        assert!(t.index_on_column(1, false).is_none());
    }

    #[test]
    fn exact_distinct_ignores_nulls() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for v in [Value::Int(1), Value::Int(1), Value::Int(2), Value::Null] {
            t.push_row(Row::from_values(vec![v])).unwrap();
        }
        assert_eq!(t.exact_distinct(0), 2);
    }

    #[test]
    fn average_row_width_has_floor() {
        let t = title_table();
        assert!(t.average_row_width() > 0);
    }

    #[test]
    fn temporary_flag_roundtrip() {
        let mut t = title_table();
        assert!(!t.is_temporary());
        t.set_temporary(true);
        assert!(t.is_temporary());
    }
}
