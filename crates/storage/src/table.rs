//! Tables: a schema, typed column chunks, and secondary indexes.
//!
//! Since the columnar refactor a table stores one [`ColumnData`] per schema column —
//! native vectors for ints/floats/bools, dictionary codes for text — instead of a
//! `Vec<Row>` heap. Row ids are positions in append order, exactly as before;
//! [`Table::row`] decodes one row on demand and [`Table::scan_range`] hands a scan a
//! columnar batch without decoding anything. Per-column [`ColumnMeta`] (NULL count,
//! min/max, byte width) is maintained on every append so ANALYZE and the cost model
//! can read it instead of rescanning.

use crate::column::{ColumnBatch, ColumnData, ColumnMeta};
use crate::error::StorageError;
use crate::index::{Index, IndexKind};
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::value::Value;
use std::collections::BTreeMap;
use std::ops::Range;

/// An in-memory columnar table.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    columns: Vec<ColumnData>,
    meta: Vec<ColumnMeta>,
    row_count: usize,
    indexes: BTreeMap<String, Index>,
    temporary: bool,
}

impl Table {
    /// Create an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        let columns = schema
            .columns()
            .iter()
            .map(|c| ColumnData::new_for(c.data_type()))
            .collect();
        let meta = schema.columns().iter().map(|_| ColumnMeta::default()).collect();
        Self {
            name: name.into().to_ascii_lowercase(),
            schema,
            columns,
            meta,
            row_count: 0,
            indexes: BTreeMap::new(),
            temporary: false,
        }
    }

    /// Create a table pre-populated with rows (no schema validation per row; use
    /// [`Table::push_row`] when validation matters).
    pub fn with_rows(name: impl Into<String>, schema: Schema, rows: Vec<Row>) -> Self {
        let mut table = Self::new(name, schema);
        for row in rows {
            table.push_row_unchecked(row);
        }
        table
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Whether this table is a temporary table created during re-optimization.
    pub fn is_temporary(&self) -> bool {
        self.temporary
    }

    /// Mark or unmark the table as temporary.
    pub fn set_temporary(&mut self, temporary: bool) {
        self.temporary = temporary;
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// The stored column chunks, in schema order.
    pub fn columns(&self) -> &[ColumnData] {
        &self.columns
    }

    /// One stored column chunk.
    pub fn column(&self, idx: usize) -> &ColumnData {
        &self.columns[idx]
    }

    /// Incrementally maintained metadata for one column.
    pub fn column_meta(&self, idx: usize) -> &ColumnMeta {
        &self.meta[idx]
    }

    /// The exact value at (`row`, `col`), decoded on demand.
    pub fn value_at(&self, row: RowId, col: usize) -> Value {
        self.columns[col].value_at(row)
    }

    /// Decode a single row by id.
    pub fn row(&self, id: RowId) -> Option<Row> {
        if id >= self.row_count {
            return None;
        }
        Some(Row::from_values(
            self.columns.iter().map(|c| c.value_at(id)).collect(),
        ))
    }

    /// Iterate over all rows, decoding each in append order.
    pub fn iter_rows(&self) -> impl Iterator<Item = Row> + '_ {
        (0..self.row_count).map(move |id| {
            Row::from_values(self.columns.iter().map(|c| c.value_at(id)).collect())
        })
    }

    /// Decode every row (tests and one-off consumers; hot paths should use
    /// [`Table::scan_range`]).
    pub fn to_rows(&self) -> Vec<Row> {
        self.iter_rows().collect()
    }

    /// A columnar batch of the rows in `range` (end clamped to the row count).
    /// Native values and codes are copied; string dictionaries are shared by `Arc`.
    pub fn scan_range(&self, range: Range<usize>) -> ColumnBatch {
        let start = range.start.min(self.row_count);
        let end = range.end.min(self.row_count);
        let range = start..end.max(start);
        ColumnBatch::new(self.columns.iter().map(|c| c.slice(range.clone())).collect())
    }

    /// Average row width in bytes (exact, from per-column byte sums maintained on
    /// append; used by ANALYZE / cost model).
    pub fn average_row_width(&self) -> usize {
        if self.row_count == 0 {
            return self.schema.nominal_width();
        }
        let total: u64 = self.meta.iter().map(|m| m.byte_sum).sum();
        ((total / self.row_count as u64) as usize).max(1)
    }

    /// Validate a row against the schema and append it, maintaining all indexes.
    pub fn push_row(&mut self, row: Row) -> Result<RowId, StorageError> {
        if row.len() != self.schema.len() {
            return Err(StorageError::SchemaMismatch {
                detail: format!(
                    "table '{}' expects {} columns, row has {}",
                    self.name,
                    self.schema.len(),
                    row.len()
                ),
            });
        }
        for (idx, value) in row.values().iter().enumerate() {
            if let Some(value_type) = value.data_type() {
                let column = self.schema.column(idx).expect("column exists");
                if !value_type.coercible_to(column.data_type()) {
                    return Err(StorageError::SchemaMismatch {
                        detail: format!(
                            "column '{}' of table '{}' has type {}, got {}",
                            column.name(),
                            self.name,
                            column.data_type(),
                            value_type
                        ),
                    });
                }
            }
        }
        Ok(self.push_row_unchecked(row))
    }

    /// Append many rows with validation.
    pub fn push_rows(&mut self, rows: Vec<Row>) -> Result<(), StorageError> {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Append a row without validation (bulk-load path used by data generators).
    pub fn push_row_unchecked(&mut self, row: Row) -> RowId {
        let row_id = self.row_count;
        for index in self.indexes.values_mut() {
            index.insert(row.value(index.column()), row_id);
        }
        // A short row (only possible through the unchecked path) is padded with NULLs
        // so every column keeps one entry per row id.
        for (idx, column) in self.columns.iter_mut().enumerate() {
            let value = row.values().get(idx).cloned().unwrap_or(Value::Null);
            self.meta[idx].observe(&value);
            column.push(value);
        }
        self.row_count += 1;
        row_id
    }

    /// Create an index over a column (by name). Fails if the name is taken or the column
    /// does not exist.
    pub fn create_index(
        &mut self,
        index_name: impl Into<String>,
        column_name: &str,
        kind: IndexKind,
    ) -> Result<(), StorageError> {
        let index_name = index_name.into().to_ascii_lowercase();
        if self.indexes.contains_key(&index_name) {
            return Err(StorageError::IndexExists(index_name));
        }
        let column = self.schema.index_of(None, column_name)?;
        let keys = (0..self.row_count).map(|id| self.columns[column].value_at(id));
        let index = Index::build(kind, index_name.clone(), column, keys);
        self.indexes.insert(index_name, index);
        Ok(())
    }

    /// Drop an index by name.
    pub fn drop_index(&mut self, index_name: &str) -> Result<(), StorageError> {
        self.indexes
            .remove(&index_name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| StorageError::IndexNotFound(index_name.to_string()))
    }

    /// All indexes on this table.
    pub fn indexes(&self) -> impl Iterator<Item = &Index> {
        self.indexes.values()
    }

    /// The first index (if any) over the given column ordinal, preferring B-trees when
    /// `need_range` is set.
    pub fn index_on_column(&self, column: usize, need_range: bool) -> Option<&Index> {
        let mut fallback = None;
        for index in self.indexes.values() {
            if index.column() != column {
                continue;
            }
            if need_range {
                if index.supports_range() {
                    return Some(index);
                }
            } else {
                if matches!(index.kind(), IndexKind::Hash) {
                    return Some(index);
                }
                fallback = Some(index);
            }
        }
        if need_range {
            None
        } else {
            fallback
        }
    }

    /// Whether any index exists on the given column ordinal.
    pub fn has_index_on(&self, column: usize) -> bool {
        self.indexes.values().any(|i| i.column() == column)
    }

    /// Total number of distinct non-NULL values in a column, computed exactly.
    /// For dictionary-coded text columns this is just the dictionary size; other
    /// encodings scan. Used by tests and by the perfect-cardinality oracle; ANALYZE
    /// uses sampling.
    pub fn exact_distinct(&self, column: usize) -> usize {
        match &self.columns[column] {
            ColumnData::Dict { dict, .. } => dict.len(),
            data => {
                let mut seen: std::collections::HashSet<Value> = std::collections::HashSet::new();
                for id in 0..data.len() {
                    let v = data.value_at(id);
                    if !v.is_null() {
                        seen.insert(v);
                    }
                }
                seen.len()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use crate::value::DataType;

    fn title_table() -> Table {
        let schema = Schema::new(vec![
            Column::not_null("id", DataType::Int),
            Column::new("title", DataType::Text),
            Column::new("production_year", DataType::Int),
        ]);
        Table::new("title", schema)
    }

    #[test]
    fn push_row_validates_arity() {
        let mut t = title_table();
        let err = t
            .push_row(Row::from_values(vec![Value::Int(1)]))
            .unwrap_err();
        assert!(matches!(err, StorageError::SchemaMismatch { .. }));
    }

    #[test]
    fn push_row_validates_types() {
        let mut t = title_table();
        let err = t
            .push_row(Row::from_values(vec![
                Value::from("not an int"),
                Value::from("x"),
                Value::Int(2000),
            ]))
            .unwrap_err();
        assert!(err.to_string().contains("has type int"));
    }

    #[test]
    fn push_row_accepts_nulls_and_int_to_float() {
        let schema = Schema::new(vec![Column::new("score", DataType::Float)]);
        let mut t = Table::new("scores", schema);
        t.push_row(Row::from_values(vec![Value::Int(3)])).unwrap();
        t.push_row(Row::from_values(vec![Value::Null])).unwrap();
        assert_eq!(t.row_count(), 2);
        // Exact decode fidelity: the Int stays an Int even in a Float column (the
        // column silently promotes to the exact-value encoding).
        assert_eq!(t.row(0).unwrap().values(), &[Value::Int(3)]);
        assert_eq!(t.row(1).unwrap().values(), &[Value::Null]);
    }

    #[test]
    fn rows_round_trip_through_columns() {
        let mut t = title_table();
        for i in 0..5 {
            t.push_row(Row::from_values(vec![
                Value::Int(i),
                if i == 2 { Value::Null } else { Value::from(format!("movie {i}")) },
                Value::Int(1990 + i),
            ]))
            .unwrap();
        }
        assert_eq!(t.row(2).unwrap().values()[1], Value::Null);
        assert_eq!(t.row(4).unwrap().values()[1], Value::from("movie 4"));
        assert!(t.row(5).is_none());
        assert_eq!(t.to_rows().len(), 5);
        assert_eq!(t.iter_rows().count(), 5);
        assert_eq!(t.value_at(3, 2), Value::Int(1993));
    }

    #[test]
    fn scan_range_slices_and_clamps() {
        let mut t = title_table();
        for i in 0..10 {
            t.push_row(Row::from_values(vec![
                Value::Int(i),
                Value::from("x"),
                Value::Int(2000),
            ]))
            .unwrap();
        }
        let batch = t.scan_range(3..6);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch.value_at(0, 0), Value::Int(3));
        // Oversized and empty ranges clamp instead of panicking (the morsel cursor
        // can overshoot the last chunk).
        assert_eq!(t.scan_range(8..100).len(), 2);
        assert_eq!(t.scan_range(20..30).len(), 0);
        assert_eq!(t.scan_range(4..4).len(), 0);
        // Batch-size-1 split.
        assert_eq!(t.scan_range(9..10).len(), 1);
    }

    #[test]
    fn column_meta_is_maintained_on_append() {
        let mut t = title_table();
        for (id, year) in [(4, 1994), (1, 1991), (3, 1993)] {
            t.push_row(Row::from_values(vec![
                Value::Int(id),
                Value::Null,
                Value::Int(year),
            ]))
            .unwrap();
        }
        assert_eq!(t.column_meta(0).min, Some(Value::Int(1)));
        assert_eq!(t.column_meta(0).max, Some(Value::Int(4)));
        assert_eq!(t.column_meta(1).null_count, 3);
        assert_eq!(t.column_meta(2).max, Some(Value::Int(1994)));
    }

    #[test]
    fn index_creation_and_maintenance() {
        let mut t = title_table();
        for i in 0..10 {
            t.push_row(Row::from_values(vec![
                Value::Int(i),
                Value::from(format!("movie {i}")),
                Value::Int(1990 + (i % 5)),
            ]))
            .unwrap();
        }
        t.create_index("title_year", "production_year", IndexKind::BTree)
            .unwrap();
        // New inserts must be reflected by the index.
        t.push_row(Row::from_values(vec![
            Value::Int(10),
            Value::from("movie 10"),
            Value::Int(1991),
        ]))
        .unwrap();
        let idx = t.index_on_column(2, true).unwrap();
        assert_eq!(idx.lookup(&Value::Int(1991)).len(), 3);
        assert!(t.has_index_on(2));
        assert!(!t.has_index_on(1));
    }

    #[test]
    fn duplicate_index_rejected() {
        let mut t = title_table();
        t.create_index("ix", "id", IndexKind::Hash).unwrap();
        assert!(matches!(
            t.create_index("ix", "id", IndexKind::Hash),
            Err(StorageError::IndexExists(_))
        ));
        t.drop_index("ix").unwrap();
        assert!(matches!(
            t.drop_index("ix"),
            Err(StorageError::IndexNotFound(_))
        ));
    }

    #[test]
    fn index_on_column_prefers_right_kind() {
        let mut t = title_table();
        t.create_index("hash_id", "id", IndexKind::Hash).unwrap();
        t.create_index("btree_id", "id", IndexKind::BTree).unwrap();
        assert_eq!(
            t.index_on_column(0, false).unwrap().kind(),
            IndexKind::Hash
        );
        assert_eq!(t.index_on_column(0, true).unwrap().kind(), IndexKind::BTree);
        assert!(t.index_on_column(1, false).is_none());
    }

    #[test]
    fn exact_distinct_ignores_nulls() {
        let schema = Schema::new(vec![Column::new("x", DataType::Int)]);
        let mut t = Table::new("t", schema);
        for v in [Value::Int(1), Value::Int(1), Value::Int(2), Value::Null] {
            t.push_row(Row::from_values(vec![v])).unwrap();
        }
        assert_eq!(t.exact_distinct(0), 2);
    }

    #[test]
    fn exact_distinct_reads_text_from_the_dictionary() {
        let schema = Schema::new(vec![Column::new("s", DataType::Text)]);
        let mut t = Table::new("t", schema);
        for v in ["a", "b", "a", "c"] {
            t.push_row(Row::from_values(vec![Value::from(v)])).unwrap();
        }
        t.push_row(Row::from_values(vec![Value::Null])).unwrap();
        assert_eq!(t.exact_distinct(0), 3);
    }

    #[test]
    fn average_row_width_has_floor() {
        let t = title_table();
        assert!(t.average_row_width() > 0);
    }

    #[test]
    fn temporary_flag_roundtrip() {
        let mut t = title_table();
        assert!(!t.is_temporary());
        t.set_temporary(true);
        assert!(t.is_temporary());
    }
}
