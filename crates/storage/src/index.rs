//! Secondary indexes.
//!
//! The paper adds foreign-key indexes to every join column "making access path selection
//! more challenging" (Section III-A): the optimizer must choose between sequential scans,
//! index scans and index-nested-loop joins. Two index shapes are provided:
//!
//! * [`HashIndex`] — equality lookups (`col = const`, index-nested-loop join probes).
//! * [`BTreeIndex`] — equality *and* range lookups (`col > const`, `BETWEEN`).
//!
//! Both map a key value to the [`RowId`]s holding it. NULL keys are not indexed, which
//! matches SQL semantics for equality predicates (NULL never matches).

use crate::row::RowId;
use crate::value::Value;
use std::collections::{BTreeMap, HashMap};
use std::ops::Bound;

/// The physical shape of an index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexKind {
    /// Hash index: equality lookups only.
    Hash,
    /// B-tree index: equality and range lookups.
    BTree,
}

/// A secondary index over a single column of a table.
#[derive(Debug, Clone)]
pub enum Index {
    /// Hash-shaped index.
    Hash(HashIndex),
    /// B-tree-shaped index.
    BTree(BTreeIndex),
}

impl Index {
    /// Build an index of the requested kind over `column` from that column's values
    /// in row-id order (the columnar table decodes the key column once; nothing else
    /// is materialized).
    pub fn build(
        kind: IndexKind,
        name: impl Into<String>,
        column: usize,
        keys: impl Iterator<Item = Value>,
    ) -> Self {
        match kind {
            IndexKind::Hash => Index::Hash(HashIndex::build(name, column, keys)),
            IndexKind::BTree => Index::BTree(BTreeIndex::build(name, column, keys)),
        }
    }

    /// Index name.
    pub fn name(&self) -> &str {
        match self {
            Index::Hash(i) => &i.name,
            Index::BTree(i) => &i.name,
        }
    }

    /// The indexed column ordinal.
    pub fn column(&self) -> usize {
        match self {
            Index::Hash(i) => i.column,
            Index::BTree(i) => i.column,
        }
    }

    /// The index kind.
    pub fn kind(&self) -> IndexKind {
        match self {
            Index::Hash(_) => IndexKind::Hash,
            Index::BTree(_) => IndexKind::BTree,
        }
    }

    /// Whether this index can serve range predicates.
    pub fn supports_range(&self) -> bool {
        matches!(self, Index::BTree(_))
    }

    /// Equality lookup: all row ids whose key equals `key`.
    pub fn lookup(&self, key: &Value) -> &[RowId] {
        match self {
            Index::Hash(i) => i.lookup(key),
            Index::BTree(i) => i.lookup(key),
        }
    }

    /// Range lookup (B-tree only; hash indexes return an empty result).
    pub fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        match self {
            Index::Hash(_) => Vec::new(),
            Index::BTree(i) => i.range(low, high),
        }
    }

    /// Number of distinct keys in the index.
    pub fn distinct_keys(&self) -> usize {
        match self {
            Index::Hash(i) => i.map.len(),
            Index::BTree(i) => i.map.len(),
        }
    }

    /// Total number of indexed entries (rows with non-NULL keys).
    pub fn entry_count(&self) -> usize {
        match self {
            Index::Hash(i) => i.entries,
            Index::BTree(i) => i.entries,
        }
    }

    /// Register a newly appended row in the index.
    pub fn insert(&mut self, key: &Value, row_id: RowId) {
        match self {
            Index::Hash(i) => i.insert(key, row_id),
            Index::BTree(i) => i.insert(key, row_id),
        }
    }
}

/// Hash index: `Value -> Vec<RowId>`.
#[derive(Debug, Clone)]
pub struct HashIndex {
    name: String,
    column: usize,
    map: HashMap<Value, Vec<RowId>>,
    entries: usize,
}

impl HashIndex {
    /// Build a hash index from the key column's values in row-id order.
    pub fn build(
        name: impl Into<String>,
        column: usize,
        keys: impl Iterator<Item = Value>,
    ) -> Self {
        let mut index = Self {
            name: name.into(),
            column,
            map: HashMap::new(),
            entries: 0,
        };
        for (row_id, key) in keys.enumerate() {
            index.insert(&key, row_id);
        }
        index
    }

    fn insert(&mut self, key: &Value, row_id: RowId) {
        if key.is_null() {
            return;
        }
        self.map.entry(key.clone()).or_default().push(row_id);
        self.entries += 1;
    }

    fn lookup(&self, key: &Value) -> &[RowId] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// B-tree index: ordered `Value -> Vec<RowId>`.
#[derive(Debug, Clone)]
pub struct BTreeIndex {
    name: String,
    column: usize,
    map: BTreeMap<Value, Vec<RowId>>,
    entries: usize,
}

impl BTreeIndex {
    /// Build a B-tree index from the key column's values in row-id order.
    pub fn build(
        name: impl Into<String>,
        column: usize,
        keys: impl Iterator<Item = Value>,
    ) -> Self {
        let mut index = Self {
            name: name.into(),
            column,
            map: BTreeMap::new(),
            entries: 0,
        };
        for (row_id, key) in keys.enumerate() {
            index.insert(&key, row_id);
        }
        index
    }

    fn insert(&mut self, key: &Value, row_id: RowId) {
        if key.is_null() {
            return;
        }
        self.map.entry(key.clone()).or_default().push(row_id);
        self.entries += 1;
    }

    fn lookup(&self, key: &Value) -> &[RowId] {
        if key.is_null() {
            return &[];
        }
        self.map.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    fn range(&self, low: Bound<&Value>, high: Bound<&Value>) -> Vec<RowId> {
        let low = clone_bound(low);
        let high = clone_bound(high);
        let mut out = Vec::new();
        for (_, ids) in self.map.range((low, high)) {
            out.extend_from_slice(ids);
        }
        out
    }
}

fn clone_bound(b: Bound<&Value>) -> Bound<Value> {
    match b {
        Bound::Included(v) => Bound::Included(v.clone()),
        Bound::Excluded(v) => Bound::Excluded(v.clone()),
        Bound::Unbounded => Bound::Unbounded,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row::Row;

    fn rows() -> Vec<Row> {
        vec![
            Row::from_values(vec![Value::Int(1), Value::from("a")]),
            Row::from_values(vec![Value::Int(2), Value::from("b")]),
            Row::from_values(vec![Value::Int(2), Value::from("c")]),
            Row::from_values(vec![Value::Null, Value::from("d")]),
            Row::from_values(vec![Value::Int(5), Value::from("e")]),
        ]
    }

    #[test]
    fn hash_index_equality_lookup() {
        let rows = rows();
        let idx = Index::build(IndexKind::Hash, "ix", 0, rows.iter().map(|r| r.value(0).clone()));
        assert_eq!(idx.lookup(&Value::Int(2)), &[1, 2]);
        assert_eq!(idx.lookup(&Value::Int(42)), &[] as &[RowId]);
        assert_eq!(idx.lookup(&Value::Null), &[] as &[RowId]);
        assert_eq!(idx.distinct_keys(), 3);
        assert_eq!(idx.entry_count(), 4);
        assert!(!idx.supports_range());
    }

    #[test]
    fn btree_index_range_lookup() {
        let rows = rows();
        let idx = Index::build(IndexKind::BTree, "ix", 0, rows.iter().map(|r| r.value(0).clone()));
        let hits = idx.range(Bound::Included(&Value::Int(2)), Bound::Unbounded);
        assert_eq!(hits, vec![1, 2, 4]);
        let hits = idx.range(Bound::Excluded(&Value::Int(2)), Bound::Excluded(&Value::Int(5)));
        assert!(hits.is_empty());
        assert!(idx.supports_range());
        assert_eq!(idx.kind(), IndexKind::BTree);
    }

    #[test]
    fn hash_index_range_is_empty() {
        let rows = rows();
        let idx = Index::build(IndexKind::Hash, "ix", 0, rows.iter().map(|r| r.value(0).clone()));
        assert!(idx
            .range(Bound::Unbounded, Bound::Unbounded)
            .is_empty());
    }

    #[test]
    fn insert_updates_index() {
        let rows = rows();
        let mut idx = Index::build(IndexKind::Hash, "ix", 0, rows.iter().map(|r| r.value(0).clone()));
        idx.insert(&Value::Int(1), 5);
        assert_eq!(idx.lookup(&Value::Int(1)), &[0, 5]);
        // NULL inserts are ignored.
        idx.insert(&Value::Null, 6);
        assert_eq!(idx.entry_count(), 5);
    }

    #[test]
    fn index_metadata() {
        let rows = rows();
        let idx = Index::build(IndexKind::BTree, "title_id_btree", 0, rows.iter().map(|r| r.value(0).clone()));
        assert_eq!(idx.name(), "title_id_btree");
        assert_eq!(idx.column(), 0);
    }
}
