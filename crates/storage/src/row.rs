//! Rows (tuples) and row identifiers.

use crate::value::Value;
use std::fmt;

/// Identifier of a row within a table heap (its position in insertion order).
pub type RowId = usize;

/// A materialized tuple.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Row {
    values: Vec<Value>,
}

impl Row {
    /// Create a row from a vector of values.
    pub fn from_values(values: Vec<Value>) -> Self {
        Self { values }
    }

    /// Create an empty row with reserved capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            values: Vec::with_capacity(capacity),
        }
    }

    /// Number of values in the row.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the row has no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Value at position `idx`, or NULL if out of range (defensive; callers should have
    /// resolved indices against the schema already).
    pub fn value(&self, idx: usize) -> &Value {
        static NULL: Value = Value::Null;
        self.values.get(idx).unwrap_or(&NULL)
    }

    /// All values.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Mutable access to all values.
    pub fn values_mut(&mut self) -> &mut Vec<Value> {
        &mut self.values
    }

    /// Append a value.
    pub fn push(&mut self, value: Value) {
        self.values.push(value);
    }

    /// Concatenate two rows (the row of a join result).
    pub fn join(&self, other: &Row) -> Row {
        let mut values = Vec::with_capacity(self.len() + other.len());
        values.extend_from_slice(&self.values);
        values.extend_from_slice(&other.values);
        Row::from_values(values)
    }

    /// Return a row consisting of the values at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row::from_values(indices.iter().map(|&i| self.value(i).clone()).collect())
    }

    /// Approximate width in bytes (for cost accounting and statistics).
    pub fn width(&self) -> usize {
        self.values.iter().map(Value::width).sum()
    }
}

impl From<Vec<Value>> for Row {
    fn from(values: Vec<Value>) -> Self {
        Row::from_values(values)
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.values.iter().map(|v| v.to_string()).collect();
        write!(f, "[{}]", parts.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_access_is_safe_out_of_range() {
        let row = Row::from_values(vec![Value::Int(1)]);
        assert_eq!(row.value(0), &Value::Int(1));
        assert_eq!(row.value(5), &Value::Null);
    }

    #[test]
    fn join_concatenates_values() {
        let a = Row::from_values(vec![Value::Int(1), Value::from("x")]);
        let b = Row::from_values(vec![Value::Int(2)]);
        let j = a.join(&b);
        assert_eq!(j.len(), 3);
        assert_eq!(j.value(2), &Value::Int(2));
    }

    #[test]
    fn project_reorders_values() {
        let row = Row::from_values(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let p = row.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn width_sums_value_widths() {
        let row = Row::from_values(vec![Value::Int(1), Value::from("abcd")]);
        assert_eq!(row.width(), 12);
    }

    #[test]
    fn display_formats_values() {
        let row = Row::from_values(vec![Value::Int(1), Value::Null]);
        assert_eq!(row.to_string(), "[1, NULL]");
    }

    #[test]
    fn push_and_capacity() {
        let mut row = Row::with_capacity(2);
        assert!(row.is_empty());
        row.push(Value::Bool(true));
        assert_eq!(row.len(), 1);
    }
}
