//! SQL tokenizer.

use crate::error::ParseError;
use std::fmt;

/// The kind of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier or keyword (keywords are recognized by the parser, case-insensitively).
    Ident(String),
    /// String literal with quotes removed and doubled quotes unescaped.
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `;`
    Semicolon,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// End of input.
    Eof,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::StringLit(s) => write!(f, "'{s}'"),
            TokenKind::IntLit(v) => write!(f, "{v}"),
            TokenKind::FloatLit(v) => write!(f, "{v}"),
            TokenKind::LParen => f.write_str("("),
            TokenKind::RParen => f.write_str(")"),
            TokenKind::Comma => f.write_str(","),
            TokenKind::Semicolon => f.write_str(";"),
            TokenKind::Dot => f.write_str("."),
            TokenKind::Star => f.write_str("*"),
            TokenKind::Eq => f.write_str("="),
            TokenKind::NotEq => f.write_str("<>"),
            TokenKind::Lt => f.write_str("<"),
            TokenKind::LtEq => f.write_str("<="),
            TokenKind::Gt => f.write_str(">"),
            TokenKind::GtEq => f.write_str(">="),
            TokenKind::Plus => f.write_str("+"),
            TokenKind::Minus => f.write_str("-"),
            TokenKind::Slash => f.write_str("/"),
            TokenKind::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token plus its byte offset in the input.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token kind (and value, for literals and identifiers).
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub offset: usize,
}

impl Token {
    /// Whether this token is the given keyword (case-insensitive).
    pub fn is_keyword(&self, kw: &str) -> bool {
        matches!(&self.kind, TokenKind::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// The tokenizer. Call [`Lexer::tokenize`] to get the full token stream.
#[derive(Debug)]
pub struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    /// Create a lexer over `input`.
    pub fn new(input: &'a str) -> Self {
        Self {
            input,
            bytes: input.as_bytes(),
            pos: 0,
        }
    }

    /// Tokenize the whole input, appending a trailing [`TokenKind::Eof`].
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut tokens = Vec::new();
        loop {
            let token = self.next_token()?;
            let eof = token.kind == TokenKind::Eof;
            tokens.push(token);
            if eof {
                break;
            }
        }
        Ok(tokens)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn peek_ahead(&self, n: usize) -> Option<u8> {
        self.bytes.get(self.pos + n).copied()
    }

    fn skip_whitespace_and_comments(&mut self) {
        loop {
            while matches!(self.peek(), Some(b) if b.is_ascii_whitespace()) {
                self.pos += 1;
            }
            // SQL line comments: -- to end of line.
            if self.peek() == Some(b'-') && self.peek_ahead(1) == Some(b'-') {
                while let Some(b) = self.peek() {
                    self.pos += 1;
                    if b == b'\n' {
                        break;
                    }
                }
                continue;
            }
            // Block comments: /* ... */
            if self.peek() == Some(b'/') && self.peek_ahead(1) == Some(b'*') {
                self.pos += 2;
                while self.pos < self.bytes.len() {
                    if self.peek() == Some(b'*') && self.peek_ahead(1) == Some(b'/') {
                        self.pos += 2;
                        break;
                    }
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn next_token(&mut self) -> Result<Token, ParseError> {
        self.skip_whitespace_and_comments();
        let offset = self.pos;
        let b = match self.peek() {
            None => {
                return Ok(Token {
                    kind: TokenKind::Eof,
                    offset,
                })
            }
            Some(b) => b,
        };

        let kind = match b {
            b'(' => {
                self.pos += 1;
                TokenKind::LParen
            }
            b')' => {
                self.pos += 1;
                TokenKind::RParen
            }
            b',' => {
                self.pos += 1;
                TokenKind::Comma
            }
            b';' => {
                self.pos += 1;
                TokenKind::Semicolon
            }
            b'.' => {
                self.pos += 1;
                TokenKind::Dot
            }
            b'*' => {
                self.pos += 1;
                TokenKind::Star
            }
            b'=' => {
                self.pos += 1;
                TokenKind::Eq
            }
            b'+' => {
                self.pos += 1;
                TokenKind::Plus
            }
            b'-' => {
                self.pos += 1;
                TokenKind::Minus
            }
            b'/' => {
                self.pos += 1;
                TokenKind::Slash
            }
            b'!' => {
                if self.peek_ahead(1) == Some(b'=') {
                    self.pos += 2;
                    TokenKind::NotEq
                } else {
                    return Err(ParseError::new("unexpected character '!'", offset));
                }
            }
            b'<' => {
                if self.peek_ahead(1) == Some(b'=') {
                    self.pos += 2;
                    TokenKind::LtEq
                } else if self.peek_ahead(1) == Some(b'>') {
                    self.pos += 2;
                    TokenKind::NotEq
                } else {
                    self.pos += 1;
                    TokenKind::Lt
                }
            }
            b'>' => {
                if self.peek_ahead(1) == Some(b'=') {
                    self.pos += 2;
                    TokenKind::GtEq
                } else {
                    self.pos += 1;
                    TokenKind::Gt
                }
            }
            b'\'' => return self.lex_string(offset),
            b'"' => return self.lex_quoted_ident(offset),
            b'0'..=b'9' => return self.lex_number(offset),
            b if b.is_ascii_alphabetic() || b == b'_' => return Ok(self.lex_ident(offset)),
            other => {
                return Err(ParseError::new(
                    format!("unexpected character '{}'", other as char),
                    offset,
                ))
            }
        };
        Ok(Token { kind, offset })
    }

    fn lex_string(&mut self, offset: usize) -> Result<Token, ParseError> {
        // Skip opening quote.
        self.pos += 1;
        let mut value = String::new();
        loop {
            match self.peek() {
                None => return Err(ParseError::new("unterminated string literal", offset)),
                Some(b'\'') => {
                    if self.peek_ahead(1) == Some(b'\'') {
                        value.push('\'');
                        self.pos += 2;
                    } else {
                        self.pos += 1;
                        break;
                    }
                }
                Some(_) => {
                    // Advance one UTF-8 character.
                    let rest = &self.input[self.pos..];
                    let ch = rest.chars().next().expect("non-empty");
                    value.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        Ok(Token {
            kind: TokenKind::StringLit(value),
            offset,
        })
    }

    fn lex_quoted_ident(&mut self, offset: usize) -> Result<Token, ParseError> {
        self.pos += 1;
        let start = self.pos;
        while let Some(b) = self.peek() {
            if b == b'"' {
                let ident = self.input[start..self.pos].to_string();
                self.pos += 1;
                return Ok(Token {
                    kind: TokenKind::Ident(ident),
                    offset,
                });
            }
            self.pos += 1;
        }
        Err(ParseError::new("unterminated quoted identifier", offset))
    }

    fn lex_number(&mut self, offset: usize) -> Result<Token, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') && matches!(self.peek_ahead(1), Some(b) if b.is_ascii_digit())
        {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut ahead = 1;
            if matches!(self.peek_ahead(1), Some(b'+' | b'-')) {
                ahead = 2;
            }
            if matches!(self.peek_ahead(ahead), Some(b) if b.is_ascii_digit()) {
                is_float = true;
                self.pos += ahead;
                while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                    self.pos += 1;
                }
            }
        }
        let text = &self.input[start..self.pos];
        let kind = if is_float {
            TokenKind::FloatLit(
                text.parse::<f64>()
                    .map_err(|_| ParseError::new(format!("invalid number '{text}'"), offset))?,
            )
        } else {
            TokenKind::IntLit(
                text.parse::<i64>()
                    .map_err(|_| ParseError::new(format!("invalid number '{text}'"), offset))?,
            )
        };
        Ok(Token { kind, offset })
    }

    fn lex_ident(&mut self, offset: usize) -> Token {
        let start = self.pos;
        while matches!(self.peek(), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
        Token {
            kind: TokenKind::Ident(self.input[start..self.pos].to_string()),
            offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(sql: &str) -> Vec<TokenKind> {
        Lexer::new(sql)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_simple_select() {
        let toks = kinds("SELECT min(t.id) FROM title AS t WHERE t.production_year > 2000;");
        assert!(toks.contains(&TokenKind::Ident("SELECT".into())));
        assert!(toks.contains(&TokenKind::Gt));
        assert!(toks.contains(&TokenKind::IntLit(2000)));
        assert_eq!(*toks.last().unwrap(), TokenKind::Eof);
    }

    #[test]
    fn lexes_strings_with_escapes() {
        let toks = kinds("n.name LIKE '%Downey%Robert%' AND x = 'O''Brien'");
        assert!(toks.contains(&TokenKind::StringLit("%Downey%Robert%".into())));
        assert!(toks.contains(&TokenKind::StringLit("O'Brien".into())));
    }

    #[test]
    fn lexes_operators() {
        let toks = kinds("a <> b != c <= d >= e < f > g = h");
        assert_eq!(
            toks.iter()
                .filter(|k| matches!(k, TokenKind::NotEq))
                .count(),
            2
        );
        assert!(toks.contains(&TokenKind::LtEq));
        assert!(toks.contains(&TokenKind::GtEq));
    }

    #[test]
    fn lexes_numbers() {
        let toks = kinds("1 2.5 3e2 10.25e-1");
        assert_eq!(toks[0], TokenKind::IntLit(1));
        assert_eq!(toks[1], TokenKind::FloatLit(2.5));
        assert_eq!(toks[2], TokenKind::FloatLit(300.0));
        assert_eq!(toks[3], TokenKind::FloatLit(1.025));
    }

    #[test]
    fn skips_comments() {
        let toks = kinds("SELECT -- a comment\n 1 /* block */ , 2");
        assert!(toks.contains(&TokenKind::IntLit(1)));
        assert!(toks.contains(&TokenKind::IntLit(2)));
        assert_eq!(toks.len(), 5); // SELECT 1 , 2 EOF
    }

    #[test]
    fn quoted_identifiers() {
        let toks = kinds("\"movie_info\" . \"info\"");
        assert_eq!(toks[0], TokenKind::Ident("movie_info".into()));
        assert_eq!(toks[1], TokenKind::Dot);
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(Lexer::new("'abc").tokenize().is_err());
        assert!(Lexer::new("\"abc").tokenize().is_err());
    }

    #[test]
    fn unexpected_character_errors() {
        assert!(Lexer::new("a ! b").tokenize().is_err());
        assert!(Lexer::new("a ? b").tokenize().is_err());
    }

    #[test]
    fn keyword_check_is_case_insensitive() {
        let toks = Lexer::new("select").tokenize().unwrap();
        assert!(toks[0].is_keyword("SELECT"));
        assert!(toks[0].is_keyword("select"));
        assert!(!toks[0].is_keyword("from"));
    }

    #[test]
    fn token_display_round_trips_through_the_lexer() {
        // Rendering every token with Display and re-lexing the result must
        // reproduce the same token stream (for inputs without embedded quotes,
        // which Display does not re-escape).
        let sql = "SELECT min(t.title) AS movie_title, count(*) AS c \
                   FROM title AS t, movie_keyword AS mk, keyword AS k \
                   WHERE t.id = mk.movie_id AND mk.keyword_id = k.id \
                     AND k.keyword = 'marvel-cinematic-universe' \
                     AND t.production_year > 2010 AND t.kind_id <> 7;";
        let original = kinds(sql);
        let rendered = original
            .iter()
            .filter(|k| !matches!(k, TokenKind::Eof))
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        let relexed = kinds(&rendered);
        assert_eq!(original, relexed);
    }

    #[test]
    fn round_trip_preserves_every_operator_kind() {
        let sql = "( ) , ; . * = <> < <= > >= + - /";
        let original = kinds(sql);
        let rendered = original
            .iter()
            .filter(|k| !matches!(k, TokenKind::Eof))
            .map(|k| k.to_string())
            .collect::<Vec<_>>()
            .join(" ");
        assert_eq!(original, kinds(&rendered));
    }
}
