//! Parse errors.

use std::fmt;

/// An error produced by the lexer or parser, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the SQL text where the error was detected.
    pub offset: usize,
}

impl ParseError {
    /// Create a parse error.
    pub fn new(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for ParseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_offset_and_message() {
        let e = ParseError::new("unexpected token", 17);
        assert_eq!(e.to_string(), "parse error at byte 17: unexpected token");
    }
}
