//! The abstract syntax tree produced by the parser.

use reopt_expr::Expr;
use std::fmt;

/// Aggregate functions supported in SELECT lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunc {
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
    /// `COUNT(expr)` or `COUNT(*)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
}

impl AggregateFunc {
    /// SQL spelling of the function name.
    pub fn name(self) -> &'static str {
        match self {
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Avg => "AVG",
        }
    }

    /// Parse a function name into an aggregate, if it is one.
    pub fn from_name(name: &str) -> Option<Self> {
        match name.to_ascii_uppercase().as_str() {
            "MIN" => Some(AggregateFunc::Min),
            "MAX" => Some(AggregateFunc::Max),
            "COUNT" => Some(AggregateFunc::Count),
            "SUM" => Some(AggregateFunc::Sum),
            "AVG" => Some(AggregateFunc::Avg),
            _ => None,
        }
    }
}

impl fmt::Display for AggregateFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single expression in a SELECT list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectExpr {
    /// `*`
    Wildcard,
    /// An aggregate call; `arg` is `None` for `COUNT(*)`.
    Aggregate {
        /// The aggregate function.
        func: AggregateFunc,
        /// The argument, or `None` for `COUNT(*)`.
        arg: Option<Expr>,
    },
    /// A scalar expression.
    Scalar(Expr),
}

impl SelectExpr {
    /// Render as SQL.
    pub fn to_sql(&self) -> String {
        match self {
            SelectExpr::Wildcard => "*".to_string(),
            SelectExpr::Aggregate { func, arg } => match arg {
                Some(e) => format!("{}({})", func.name(), e.to_sql()),
                None => format!("{}(*)", func.name()),
            },
            SelectExpr::Scalar(e) => e.to_sql(),
        }
    }
}

/// A SELECT-list item: an expression with an optional output alias.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectItem {
    /// The expression.
    pub expr: SelectExpr,
    /// Output column alias (`AS alias`).
    pub alias: Option<String>,
}

impl SelectItem {
    /// Render as SQL.
    pub fn to_sql(&self) -> String {
        match &self.alias {
            Some(alias) => format!("{} AS {alias}", self.expr.to_sql()),
            None => self.expr.to_sql(),
        }
    }
}

/// A FROM-list entry: a base table with an alias (self-joins require distinct aliases).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TableRef {
    /// The table name in the catalog.
    pub table: String,
    /// The alias used to qualify columns; defaults to the table name.
    pub alias: String,
}

impl TableRef {
    /// A reference where the alias defaults to the table name.
    pub fn new(table: impl Into<String>) -> Self {
        let table = table.into().to_ascii_lowercase();
        Self {
            alias: table.clone(),
            table,
        }
    }

    /// A reference with an explicit alias.
    pub fn aliased(table: impl Into<String>, alias: impl Into<String>) -> Self {
        Self {
            table: table.into().to_ascii_lowercase(),
            alias: alias.into().to_ascii_lowercase(),
        }
    }

    /// Render as SQL.
    pub fn to_sql(&self) -> String {
        if self.table == self.alias {
            self.table.clone()
        } else {
            format!("{} AS {}", self.table, self.alias)
        }
    }
}

/// A single `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderByItem {
    /// The sort expression.
    pub expr: Expr,
    /// Whether the sort is ascending.
    pub ascending: bool,
}

/// A parsed SELECT statement.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStatement {
    /// The SELECT list.
    pub items: Vec<SelectItem>,
    /// The FROM list (comma-joined base tables).
    pub from: Vec<TableRef>,
    /// The WHERE clause, if any.
    pub where_clause: Option<Expr>,
    /// GROUP BY expressions, if any.
    pub group_by: Vec<Expr>,
    /// ORDER BY items, if any.
    pub order_by: Vec<OrderByItem>,
    /// LIMIT, if any.
    pub limit: Option<usize>,
}

impl SelectStatement {
    /// Whether the statement contains any aggregate in its SELECT list.
    pub fn has_aggregates(&self) -> bool {
        self.items
            .iter()
            .any(|i| matches!(i.expr, SelectExpr::Aggregate { .. }))
    }

    /// The alias of every relation in the FROM list, in order.
    pub fn aliases(&self) -> Vec<&str> {
        self.from.iter().map(|t| t.alias.as_str()).collect()
    }

    /// Render as SQL (used to display re-optimized queries, Fig. 6 of the paper).
    pub fn to_sql(&self) -> String {
        let mut out = String::from("SELECT ");
        let items: Vec<String> = self.items.iter().map(SelectItem::to_sql).collect();
        out.push_str(&items.join(",\n       "));
        out.push_str("\nFROM ");
        let tables: Vec<String> = self.from.iter().map(TableRef::to_sql).collect();
        out.push_str(&tables.join(",\n     "));
        if let Some(w) = &self.where_clause {
            out.push_str("\nWHERE ");
            out.push_str(&w.to_sql());
        }
        if !self.group_by.is_empty() {
            out.push_str("\nGROUP BY ");
            let keys: Vec<String> = self.group_by.iter().map(Expr::to_sql).collect();
            out.push_str(&keys.join(", "));
        }
        if !self.order_by.is_empty() {
            out.push_str("\nORDER BY ");
            let keys: Vec<String> = self
                .order_by
                .iter()
                .map(|o| {
                    format!(
                        "{}{}",
                        o.expr.to_sql(),
                        if o.ascending { "" } else { " DESC" }
                    )
                })
                .collect();
            out.push_str(&keys.join(", "));
        }
        if let Some(limit) = self.limit {
            out.push_str(&format!("\nLIMIT {limit}"));
        }
        out
    }
}

impl fmt::Display for SelectStatement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// A SELECT query.
    Select(SelectStatement),
    /// `CREATE [TEMP|TEMPORARY] TABLE name AS SELECT ...`.
    CreateTableAs {
        /// The new table's name.
        name: String,
        /// Whether the table is temporary.
        temporary: bool,
        /// The defining query.
        query: SelectStatement,
    },
    /// `EXPLAIN [ANALYZE] <statement>`.
    Explain {
        /// Whether to actually execute and report true cardinalities.
        analyze: bool,
        /// The explained statement.
        statement: Box<Statement>,
    },
}

impl Statement {
    /// The SELECT at the heart of this statement, if any.
    pub fn query(&self) -> Option<&SelectStatement> {
        match self {
            Statement::Select(q) => Some(q),
            Statement::CreateTableAs { query, .. } => Some(query),
            Statement::Explain { statement, .. } => statement.query(),
        }
    }

    /// Render as SQL.
    pub fn to_sql(&self) -> String {
        match self {
            Statement::Select(q) => q.to_sql(),
            Statement::CreateTableAs {
                name,
                temporary,
                query,
            } => format!(
                "CREATE {}TABLE {name} AS\n{}",
                if *temporary { "TEMP " } else { "" },
                query.to_sql()
            ),
            Statement::Explain { analyze, statement } => format!(
                "EXPLAIN {}{}",
                if *analyze { "ANALYZE " } else { "" },
                statement.to_sql()
            ),
        }
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_sql())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_func_names_roundtrip() {
        for func in [
            AggregateFunc::Min,
            AggregateFunc::Max,
            AggregateFunc::Count,
            AggregateFunc::Sum,
            AggregateFunc::Avg,
        ] {
            assert_eq!(AggregateFunc::from_name(func.name()), Some(func));
        }
        assert_eq!(AggregateFunc::from_name("median"), None);
    }

    #[test]
    fn table_ref_sql() {
        assert_eq!(TableRef::new("title").to_sql(), "title");
        assert_eq!(TableRef::aliased("cast_info", "ci").to_sql(), "cast_info AS ci");
    }

    #[test]
    fn select_to_sql_contains_clauses() {
        let stmt = SelectStatement {
            items: vec![SelectItem {
                expr: SelectExpr::Aggregate {
                    func: AggregateFunc::Min,
                    arg: Some(Expr::col("t", "title")),
                },
                alias: Some("movie_title".into()),
            }],
            from: vec![TableRef::aliased("title", "t"), TableRef::aliased("movie_keyword", "mk")],
            where_clause: Some(Expr::eq(Expr::col("t", "id"), Expr::col("mk", "movie_id"))),
            group_by: vec![],
            order_by: vec![OrderByItem {
                expr: Expr::col("t", "title"),
                ascending: false,
            }],
            limit: Some(10),
        };
        let sql = stmt.to_sql();
        assert!(sql.contains("MIN(t.title) AS movie_title"));
        assert!(sql.contains("title AS t"));
        assert!(sql.contains("WHERE t.id = mk.movie_id"));
        assert!(sql.contains("ORDER BY t.title DESC"));
        assert!(sql.contains("LIMIT 10"));
        assert!(stmt.has_aggregates());
        assert_eq!(stmt.aliases(), vec!["t", "mk"]);
    }

    #[test]
    fn statement_query_accessor() {
        let q = SelectStatement {
            items: vec![SelectItem {
                expr: SelectExpr::Wildcard,
                alias: None,
            }],
            from: vec![TableRef::new("title")],
            where_clause: None,
            group_by: vec![],
            order_by: vec![],
            limit: None,
        };
        let create = Statement::CreateTableAs {
            name: "temp1".into(),
            temporary: true,
            query: q.clone(),
        };
        assert!(create.query().is_some());
        assert!(create.to_sql().starts_with("CREATE TEMP TABLE temp1 AS"));
        let explain = Statement::Explain {
            analyze: true,
            statement: Box::new(Statement::Select(q)),
        };
        assert!(explain.to_sql().starts_with("EXPLAIN ANALYZE SELECT"));
        assert!(explain.query().is_some());
    }
}
