//! # reopt-sql
//!
//! A lexer, parser and AST for the SQL subset used by the Join Order Benchmark and by
//! the paper's re-optimization simulation:
//!
//! * `SELECT` lists with scalar expressions and the aggregates `MIN`/`MAX`/`COUNT`/`SUM`/
//!   `AVG` (JOB queries are all `SELECT MIN(...) ... FROM ... WHERE ...`),
//! * comma-separated `FROM` lists with `AS` aliases (including self-joins such as
//!   `info_type AS it1, info_type AS it2`),
//! * `WHERE` clauses built from `AND`/`OR`/`NOT`, comparisons, `IN` lists, `LIKE`,
//!   `BETWEEN` and `IS [NOT] NULL`,
//! * `GROUP BY`, `ORDER BY`, `LIMIT` (for the examples and tests),
//! * `CREATE TEMP TABLE name AS SELECT ...` — the statement the re-optimization
//!   controller emits when it materializes a mis-estimated sub-join (Fig. 6 of the
//!   paper),
//! * `EXPLAIN [ANALYZE] SELECT ...`.
//!
//! The parser produces [`Statement`]s whose predicates are
//! [`reopt_expr::Expr`] trees, so everything downstream (binder, optimizer, executor)
//! shares one expression type.

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;

pub use ast::{
    AggregateFunc, OrderByItem, SelectExpr, SelectItem, SelectStatement, Statement, TableRef,
};
pub use error::ParseError;
pub use lexer::{Lexer, Token, TokenKind};
pub use parser::{parse_sql, parse_statements, Parser};
