//! Recursive-descent parser.

use crate::ast::{
    AggregateFunc, OrderByItem, SelectExpr, SelectItem, SelectStatement, Statement, TableRef,
};
use crate::error::ParseError;
use crate::lexer::{Lexer, Token, TokenKind};
use reopt_expr::{BinaryOp, ColumnRef, Expr};
use reopt_storage::Value;

/// Keywords that terminate an expression / cannot be used as an implicit alias.
const RESERVED: &[&str] = &[
    "select", "from", "where", "group", "order", "limit", "and", "or", "not", "as", "on", "by",
    "in", "like", "between", "is", "null", "asc", "desc", "create", "table", "temp", "temporary",
    "explain", "analyze", "having", "union", "join", "inner", "left", "right", "distinct",
];

/// Parse a single SQL statement.
pub fn parse_sql(sql: &str) -> Result<Statement, ParseError> {
    let mut statements = parse_statements(sql)?;
    match statements.len() {
        1 => Ok(statements.remove(0)),
        0 => Err(ParseError::new("empty SQL input", 0)),
        n => Err(ParseError::new(
            format!("expected a single statement, found {n}"),
            0,
        )),
    }
}

/// Parse a semicolon-separated script into a list of statements.
pub fn parse_statements(sql: &str) -> Result<Vec<Statement>, ParseError> {
    let tokens = Lexer::new(sql).tokenize()?;
    let mut parser = Parser::new(tokens);
    let mut statements = Vec::new();
    loop {
        // Skip stray semicolons.
        while parser.consume_if(|k| *k == TokenKind::Semicolon) {}
        if parser.at_eof() {
            break;
        }
        statements.push(parser.parse_statement()?);
    }
    Ok(statements)
}

/// The parser state: a token stream and a cursor.
#[derive(Debug)]
pub struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    /// Create a parser over a token stream (must end with [`TokenKind::Eof`]).
    pub fn new(tokens: Vec<Token>) -> Self {
        Self { tokens, pos: 0 }
    }

    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at_eof(&self) -> bool {
        self.peek().kind == TokenKind::Eof
    }

    fn advance(&mut self) -> Token {
        let token = self.peek().clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        token
    }

    fn consume_if(&mut self, pred: impl Fn(&TokenKind) -> bool) -> bool {
        if pred(&self.peek().kind) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.peek().is_keyword(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(self.error(format!("expected keyword {kw}, found {}", self.peek().kind)))
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<(), ParseError> {
        if self.peek().kind == kind {
            self.advance();
            Ok(())
        } else {
            Err(self.error(format!("expected {kind}, found {}", self.peek().kind)))
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError::new(message, self.peek().offset)
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match &self.peek().kind {
            TokenKind::Ident(name) => {
                let name = name.clone();
                self.advance();
                Ok(name)
            }
            other => Err(self.error(format!("expected identifier, found {other}"))),
        }
    }

    /// Parse one statement (SELECT, CREATE TABLE AS, or EXPLAIN).
    pub fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.consume_keyword("explain") {
            let analyze = self.consume_keyword("analyze");
            let statement = Box::new(self.parse_statement()?);
            return Ok(Statement::Explain { analyze, statement });
        }
        if self.consume_keyword("create") {
            let temporary = self.consume_keyword("temp") || self.consume_keyword("temporary");
            self.expect_keyword("table")?;
            let name = self.expect_ident()?.to_ascii_lowercase();
            self.expect_keyword("as")?;
            let query = self.parse_select()?;
            self.consume_if(|k| *k == TokenKind::Semicolon);
            return Ok(Statement::CreateTableAs {
                name,
                temporary,
                query,
            });
        }
        let select = self.parse_select()?;
        self.consume_if(|k| *k == TokenKind::Semicolon);
        Ok(Statement::Select(select))
    }

    /// Parse a SELECT statement.
    pub fn parse_select(&mut self) -> Result<SelectStatement, ParseError> {
        self.expect_keyword("select")?;
        let mut items = vec![self.parse_select_item()?];
        while self.consume_if(|k| *k == TokenKind::Comma) {
            items.push(self.parse_select_item()?);
        }

        self.expect_keyword("from")?;
        let mut from = vec![self.parse_table_ref()?];
        while self.consume_if(|k| *k == TokenKind::Comma) {
            from.push(self.parse_table_ref()?);
        }

        let where_clause = if self.consume_keyword("where") {
            Some(self.parse_expr()?)
        } else {
            None
        };

        let mut group_by = Vec::new();
        if self.consume_keyword("group") {
            self.expect_keyword("by")?;
            group_by.push(self.parse_expr()?);
            while self.consume_if(|k| *k == TokenKind::Comma) {
                group_by.push(self.parse_expr()?);
            }
        }

        let mut order_by = Vec::new();
        if self.consume_keyword("order") {
            self.expect_keyword("by")?;
            loop {
                let expr = self.parse_expr()?;
                let ascending = if self.consume_keyword("desc") {
                    false
                } else {
                    self.consume_keyword("asc");
                    true
                };
                order_by.push(OrderByItem { expr, ascending });
                if !self.consume_if(|k| *k == TokenKind::Comma) {
                    break;
                }
            }
        }

        let limit = if self.consume_keyword("limit") {
            match self.advance().kind {
                TokenKind::IntLit(n) if n >= 0 => Some(n as usize),
                other => return Err(self.error(format!("expected LIMIT count, found {other}"))),
            }
        } else {
            None
        };

        Ok(SelectStatement {
            items,
            from,
            where_clause,
            group_by,
            order_by,
            limit,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, ParseError> {
        if self.peek().kind == TokenKind::Star {
            self.advance();
            return Ok(SelectItem {
                expr: SelectExpr::Wildcard,
                alias: None,
            });
        }
        // Aggregate call?
        let expr = if let TokenKind::Ident(name) = &self.peek().kind {
            if let Some(func) = AggregateFunc::from_name(name) {
                // Only treat as aggregate when followed by '('.
                if self.tokens.get(self.pos + 1).map(|t| &t.kind) == Some(&TokenKind::LParen) {
                    self.advance();
                    self.advance();
                    let arg = if self.peek().kind == TokenKind::Star {
                        self.advance();
                        None
                    } else {
                        Some(self.parse_expr()?)
                    };
                    self.expect(TokenKind::RParen)?;
                    SelectExpr::Aggregate { func, arg }
                } else {
                    SelectExpr::Scalar(self.parse_expr()?)
                }
            } else {
                SelectExpr::Scalar(self.parse_expr()?)
            }
        } else {
            SelectExpr::Scalar(self.parse_expr()?)
        };

        let alias = self.parse_optional_alias();
        Ok(SelectItem { expr, alias })
    }

    fn parse_optional_alias(&mut self) -> Option<String> {
        if self.consume_keyword("as") {
            if let TokenKind::Ident(name) = &self.peek().kind {
                let name = name.to_ascii_lowercase();
                self.advance();
                return Some(name);
            }
        } else if let TokenKind::Ident(name) = &self.peek().kind {
            if !RESERVED.contains(&name.to_ascii_lowercase().as_str()) {
                let name = name.to_ascii_lowercase();
                self.advance();
                return Some(name);
            }
        }
        None
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, ParseError> {
        let table = self.expect_ident()?.to_ascii_lowercase();
        let alias = self.parse_optional_alias();
        Ok(match alias {
            Some(alias) => TableRef::aliased(table, alias),
            None => TableRef::new(table),
        })
    }

    /// Parse an expression (entry point: OR precedence level).
    pub fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        self.parse_or()
    }

    fn parse_or(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_and()?;
        while self.consume_keyword("or") {
            let right = self.parse_and()?;
            expr = Expr::or(expr, right);
        }
        Ok(expr)
    }

    fn parse_and(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_not()?;
        while self.consume_keyword("and") {
            let right = self.parse_not()?;
            expr = Expr::and(expr, right);
        }
        Ok(expr)
    }

    fn parse_not(&mut self) -> Result<Expr, ParseError> {
        if self.consume_keyword("not") {
            let inner = self.parse_not()?;
            return Ok(Expr::Not(Box::new(inner)));
        }
        self.parse_comparison()
    }

    fn parse_comparison(&mut self) -> Result<Expr, ParseError> {
        let left = self.parse_additive()?;

        // IS [NOT] NULL
        if self.consume_keyword("is") {
            let negated = self.consume_keyword("not");
            self.expect_keyword("null")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }

        // [NOT] LIKE / IN / BETWEEN
        let negated = self.peek().is_keyword("not");
        if negated {
            let next = self.tokens.get(self.pos + 1);
            let follows = next
                .map(|t| t.is_keyword("like") || t.is_keyword("in") || t.is_keyword("between"))
                .unwrap_or(false);
            if follows {
                self.advance();
            } else {
                return Ok(left);
            }
        }

        if self.consume_keyword("like") {
            let pattern = match self.advance().kind {
                TokenKind::StringLit(s) => s,
                other => {
                    return Err(self.error(format!("expected LIKE pattern string, found {other}")))
                }
            };
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern,
                negated,
            });
        }

        if self.consume_keyword("in") {
            self.expect(TokenKind::LParen)?;
            let mut list = Vec::new();
            loop {
                match self.parse_additive()? {
                    Expr::Literal(v) => list.push(v),
                    other => {
                        return Err(
                            self.error(format!("IN list must contain literals, found {other}"))
                        )
                    }
                }
                if !self.consume_if(|k| *k == TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
            });
        }

        if self.consume_keyword("between") {
            let low = self.parse_additive()?;
            self.expect_keyword("and")?;
            let high = self.parse_additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
            });
        }

        let op = match self.peek().kind {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.parse_additive()?;
            return Ok(Expr::binary(op, left, right));
        }

        Ok(left)
    }

    fn parse_additive(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_multiplicative()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.parse_multiplicative()?;
            expr = Expr::binary(op, expr, right);
        }
        Ok(expr)
    }

    fn parse_multiplicative(&mut self) -> Result<Expr, ParseError> {
        let mut expr = self.parse_primary()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.parse_primary()?;
            expr = Expr::binary(op, expr, right);
        }
        Ok(expr)
    }

    fn parse_primary(&mut self) -> Result<Expr, ParseError> {
        let token = self.peek().clone();
        match token.kind {
            TokenKind::IntLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Int(v)))
            }
            TokenKind::FloatLit(v) => {
                self.advance();
                Ok(Expr::Literal(Value::Float(v)))
            }
            TokenKind::StringLit(s) => {
                self.advance();
                Ok(Expr::Literal(Value::Text(s)))
            }
            TokenKind::Minus => {
                self.advance();
                let inner = self.parse_primary()?;
                match inner {
                    Expr::Literal(Value::Int(v)) => Ok(Expr::Literal(Value::Int(-v))),
                    Expr::Literal(Value::Float(v)) => Ok(Expr::Literal(Value::Float(-v))),
                    other => Ok(Expr::binary(BinaryOp::Sub, Expr::lit(0), other)),
                }
            }
            TokenKind::LParen => {
                self.advance();
                let expr = self.parse_expr()?;
                self.expect(TokenKind::RParen)?;
                Ok(expr)
            }
            TokenKind::Ident(name) => {
                self.advance();
                let lower = name.to_ascii_lowercase();
                match lower.as_str() {
                    "null" => return Ok(Expr::Literal(Value::Null)),
                    "true" => return Ok(Expr::Literal(Value::Bool(true))),
                    "false" => return Ok(Expr::Literal(Value::Bool(false))),
                    _ => {}
                }
                if self.consume_if(|k| *k == TokenKind::Dot) {
                    let column = self.expect_ident()?;
                    Ok(Expr::Column(ColumnRef::qualified(lower, column)))
                } else {
                    Ok(Expr::Column(ColumnRef::bare(lower)))
                }
            }
            other => Err(self.error(format!("unexpected token {other} in expression"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_select() {
        let stmt = parse_sql("SELECT * FROM title AS t WHERE t.production_year > 2000;").unwrap();
        let q = stmt.query().unwrap();
        assert_eq!(q.from, vec![TableRef::aliased("title", "t")]);
        assert!(q.where_clause.is_some());
        assert_eq!(q.items.len(), 1);
        assert_eq!(q.items[0].expr, SelectExpr::Wildcard);
    }

    #[test]
    fn parses_job_style_query() {
        let sql = "
            SELECT min(k.keyword) AS movie_keyword,
                   min(n.name) AS actor_name,
                   min(t.title) AS hero_movie
            FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, title AS t
            WHERE k.keyword IN ('superhero', 'sequel', 'second-part')
              AND n.name LIKE '%Downey%Robert%'
              AND t.production_year > 2000
              AND k.id = mk.keyword_id
              AND mk.movie_id = t.id
              AND t.id = ci.movie_id
              AND ci.person_id = n.id;
        ";
        let stmt = parse_sql(sql).unwrap();
        let q = stmt.query().unwrap();
        assert_eq!(q.from.len(), 5);
        assert!(q.has_aggregates());
        let conjuncts = reopt_expr::split_conjunction(q.where_clause.as_ref().unwrap());
        assert_eq!(conjuncts.len(), 7);
        assert_eq!(q.items[0].alias.as_deref(), Some("movie_keyword"));
    }

    #[test]
    fn parses_self_joins_with_aliases() {
        let sql = "SELECT min(mi.info) FROM info_type AS it1, info_type AS it2, movie_info AS mi
                   WHERE it1.info = 'budget' AND it2.info = 'votes' AND mi.info_type_id = it1.id";
        let q = parse_sql(sql).unwrap();
        let q = q.query().unwrap();
        assert_eq!(q.aliases(), vec!["it1", "it2", "mi"]);
    }

    #[test]
    fn parses_create_temp_table_as() {
        let sql = "CREATE TEMP TABLE temp1 AS
                   SELECT mk.movie_id FROM keyword AS k, movie_keyword AS mk
                   WHERE mk.keyword_id = k.id AND k.keyword = 'character-name-in-title';";
        match parse_sql(sql).unwrap() {
            Statement::CreateTableAs {
                name,
                temporary,
                query,
            } => {
                assert_eq!(name, "temp1");
                assert!(temporary);
                assert_eq!(query.from.len(), 2);
            }
            other => panic!("expected CREATE TABLE AS, got {other:?}"),
        }
    }

    #[test]
    fn parses_explain_analyze() {
        match parse_sql("EXPLAIN ANALYZE SELECT * FROM title").unwrap() {
            Statement::Explain { analyze, statement } => {
                assert!(analyze);
                assert!(matches!(*statement, Statement::Select(_)));
            }
            other => panic!("expected EXPLAIN, got {other:?}"),
        }
        match parse_sql("EXPLAIN SELECT * FROM title").unwrap() {
            Statement::Explain { analyze, .. } => assert!(!analyze),
            other => panic!("expected EXPLAIN, got {other:?}"),
        }
    }

    #[test]
    fn parses_multiple_statements() {
        let sql = "CREATE TEMP TABLE t1 AS SELECT * FROM a; SELECT * FROM t1, b WHERE t1.x = b.x;";
        let stmts = parse_statements(sql).unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn parses_group_order_limit() {
        let sql = "SELECT t.kind_id, count(*) AS c FROM title AS t
                   GROUP BY t.kind_id ORDER BY c DESC, t.kind_id LIMIT 5";
        let q = parse_sql(sql).unwrap();
        let q = q.query().unwrap();
        assert_eq!(q.group_by.len(), 1);
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].ascending);
        assert!(q.order_by[1].ascending);
        assert_eq!(q.limit, Some(5));
    }

    #[test]
    fn parses_not_like_not_in_between() {
        let sql = "SELECT * FROM name AS n WHERE n.name NOT LIKE '%X%'
                   AND n.id NOT IN (1, 2, 3) AND n.age BETWEEN 20 AND 30 AND n.x IS NOT NULL";
        let q = parse_sql(sql).unwrap();
        let conjuncts =
            reopt_expr::split_conjunction(q.query().unwrap().where_clause.as_ref().unwrap());
        assert_eq!(conjuncts.len(), 4);
        assert!(matches!(conjuncts[0], Expr::Like { negated: true, .. }));
        assert!(matches!(conjuncts[1], Expr::InList { negated: true, .. }));
        assert!(matches!(conjuncts[2], Expr::Between { negated: false, .. }));
        assert!(matches!(conjuncts[3], Expr::IsNull { negated: true, .. }));
    }

    #[test]
    fn parses_operator_precedence() {
        let q = parse_sql("SELECT * FROM t WHERE t.a = 1 OR t.b = 2 AND t.c = 3").unwrap();
        // Must parse as a = 1 OR (b = 2 AND c = 3).
        match q.query().unwrap().where_clause.as_ref().unwrap() {
            Expr::Binary {
                op: BinaryOp::Or, ..
            } => {}
            other => panic!("expected OR at the top, got {other:?}"),
        }
    }

    #[test]
    fn parses_arithmetic_and_negative_literals() {
        let q = parse_sql("SELECT * FROM t WHERE t.a + 2 * 3 > -4").unwrap();
        let w = q.query().unwrap().where_clause.clone().unwrap();
        assert_eq!(w.to_sql(), "t.a + 2 * 3 > -4");
    }

    #[test]
    fn error_on_garbage() {
        assert!(parse_sql("SELECT FROM").is_err());
        assert!(parse_sql("SELECT * WHERE x = 1").is_err());
        assert!(parse_sql("SELECT * FROM t WHERE x IN (SELECT 1)").is_err());
        assert!(parse_sql("").is_err());
        assert!(parse_sql("SELECT * FROM t; SELECT * FROM u").is_err());
        assert!(parse_statements("SELECT * FROM t LIMIT 'x'").is_err());
    }

    #[test]
    fn count_star_and_plain_count() {
        let q = parse_sql("SELECT count(*), count(t.id) FROM t").unwrap();
        let q = q.query().unwrap();
        assert!(matches!(
            q.items[0].expr,
            SelectExpr::Aggregate {
                func: AggregateFunc::Count,
                arg: None
            }
        ));
        assert!(matches!(
            q.items[1].expr,
            SelectExpr::Aggregate {
                func: AggregateFunc::Count,
                arg: Some(_)
            }
        ));
    }

    #[test]
    fn aggregate_name_used_as_column_is_not_aggregate() {
        // "min" not followed by '(' is an ordinary identifier.
        let q = parse_sql("SELECT min FROM t").unwrap();
        assert!(matches!(
            q.query().unwrap().items[0].expr,
            SelectExpr::Scalar(_)
        ));
    }

    #[test]
    fn to_sql_reparses_to_same_ast() {
        let sql = "SELECT min(t.title) AS movie_title
                   FROM title AS t, movie_keyword AS mk
                   WHERE t.id = mk.movie_id AND t.production_year BETWEEN 1990 AND 2005";
        let stmt = parse_sql(sql).unwrap();
        let rendered = stmt.to_sql();
        let reparsed = parse_sql(&rendered).unwrap();
        assert_eq!(stmt, reparsed);
    }

    #[test]
    fn parses_job_6a_shape() {
        // JOB query 6a verbatim from the benchmark (the marvel/Downey query the
        // paper's deep dives revisit); only the schema subset differs.
        let sql = "
            SELECT min(k.keyword) AS movie_keyword,
                   min(n.name) AS actor_name,
                   min(t.title) AS marvel_movie
            FROM cast_info AS ci, keyword AS k, movie_keyword AS mk, name AS n, title AS t
            WHERE k.keyword = 'marvel-cinematic-universe'
              AND n.name LIKE '%Downey%Robert%'
              AND t.production_year > 2010
              AND k.id = mk.keyword_id
              AND t.id = mk.movie_id
              AND t.id = ci.movie_id
              AND ci.person_id = n.id
              AND ci.movie_id = mk.movie_id;
        ";
        let stmt = parse_sql(sql).unwrap();
        let q = stmt.query().unwrap();
        assert_eq!(q.aliases(), vec!["ci", "k", "mk", "n", "t"]);
        assert_eq!(q.items.len(), 3);
        assert!(q.has_aggregates());
        let conjuncts = reopt_expr::split_conjunction(q.where_clause.as_ref().unwrap());
        // 3 filters + 5 join conditions.
        assert_eq!(conjuncts.len(), 8);
    }

    #[test]
    fn malformed_sql_reports_errors_not_panics() {
        for bad in [
            "SELECT min(t.title FROM title AS t",       // unbalanced paren
            "SELECT t.id FROM title AS t WHERE",        // dangling WHERE
            "SELECT t.id, FROM title AS t",             // trailing comma
            "SELECT t.id FROM title AS t WHERE t.id BETWEEN 1", // half a BETWEEN
            "SELECT t.id FROM title AS t GROUP BY",     // dangling GROUP BY
            "FROM title AS t SELECT t.id",              // clauses out of order
        ] {
            let err = parse_sql(bad);
            assert!(err.is_err(), "expected a parse error for {bad:?}");
        }
    }
}
