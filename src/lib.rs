//! # reopt-repro
//!
//! A from-scratch Rust reproduction of *"How I Learned to Stop Worrying and Love
//! Re-optimization"* (Perron, Shang, Kraska, Stonebraker — ICDE 2019): an in-memory
//! analytic query engine with a PostgreSQL-style cost-based optimizer, an instrumented
//! executor, a perfect-(n) cardinality oracle, and a mid-query re-optimization
//! controller that materializes mis-estimated sub-joins into temporary tables and
//! re-plans the remainder of the query.
//!
//! This crate is a façade that re-exports the workspace members:
//!
//! * [`storage`] — in-memory tables, values, schemas and secondary indexes,
//! * [`expr`] — scalar expressions and predicate evaluation,
//! * [`sql`] — the SQL lexer/parser for the JOB subset,
//! * [`catalog`] — ANALYZE statistics (MCVs, histograms, n_distinct),
//! * [`planner`] — selectivity/join estimation, cost model, DPccp join enumeration,
//! * [`executor`] — physical operators with EXPLAIN ANALYZE instrumentation,
//! * [`core`] — the [`Database`](core::Database) façade, the perfect-(n) oracle and the
//!   re-optimization controller (the paper's contribution),
//! * [`workload`] — the synthetic IMDB generator, the JOB-style 113-query suite and the
//!   Nasdaq skew example.
//!
//! ## Quickstart
//!
//! ```
//! use reopt_repro::core::{execute_with_reoptimization, Database, ReoptConfig};
//! use reopt_repro::workload::{load_nasdaq, NasdaqConfig, APPL_QUERY};
//!
//! let mut db = Database::new();
//! load_nasdaq(&mut db, &NasdaqConfig::tiny()).unwrap();
//!
//! // Plain execution with the default (PostgreSQL-style) estimator ...
//! let plain = db.execute(APPL_QUERY).unwrap();
//!
//! // ... and the same query under mid-query re-optimization.
//! let report = execute_with_reoptimization(&mut db, APPL_QUERY, &ReoptConfig::default()).unwrap();
//! assert_eq!(report.final_rows, plain.rows);
//! ```

pub use reopt_catalog as catalog;
pub use reopt_core as core;
pub use reopt_executor as executor;
pub use reopt_expr as expr;
pub use reopt_planner as planner;
pub use reopt_sql as sql;
pub use reopt_storage as storage;
pub use reopt_workload as workload;

/// The crate version (useful for examples and experiment logs).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_exposed() {
        assert!(!super::VERSION.is_empty());
    }
}
